#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <sstream>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {
namespace metrics {

namespace {

std::atomic<int> g_next_thread_id{0};

}  // namespace

int DenseThreadId() {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void MaxGauge::Update(int64_t value) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

namespace {

// Bucket for a duration: 0 for < 1µs, then one bucket per power of two
// microseconds, everything past ~4.2s in the tail bucket.
int BucketIndex(uint64_t ns) {
  const uint64_t us = ns / 1000;
  if (us == 0) return 0;
  const int b = std::bit_width(us);  // floor(log2(us)) + 1
  return std::min(b, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Record(uint64_t ns) {
  buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<int64_t>(ns), std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBoundNs(int b) {
  if (b >= kNumBuckets - 1) return UINT64_MAX;
  return static_cast<uint64_t>(1000) << b;
}

uint64_t Histogram::ApproxPercentileNs(double p) const {
  const int64_t total = Count();
  if (total <= 0) return 0;
  const double target = p * static_cast<double>(total);
  int64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t in_bucket = BucketCount(b);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      const uint64_t lo = b == 0 ? 0 : BucketUpperBoundNs(b - 1);
      // Treat the open tail as one more octave for interpolation.
      const uint64_t hi =
          b == kNumBuckets - 1 ? 2 * BucketUpperBoundNs(b - 1)
                               : BucketUpperBoundNs(b);
      const double frac = std::clamp(
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket),
          0.0, 1.0);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    cum += in_bucket;
  }
  return BucketUpperBoundNs(kNumBuckets - 2);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl {
  mutable Mutex mu{"metrics.registry"};
  // unique_ptr values: instruments hand out long-lived references, so
  // they must not move when the maps rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters
      NLIDB_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges
      NLIDB_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      NLIDB_GUARDED_BY(mu);
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instruments are referenced from function-local statics in
  // hot paths and from pool workers during shutdown.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(impl_->mu);
  std::unique_ptr<Counter>& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

MaxGauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(impl_->mu);
  std::unique_ptr<MaxGauge>& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<MaxGauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(impl_->mu);
  std::unique_ptr<Histogram>& slot = impl_->histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::RenderText(bool include_zero) const {
  MutexLock lock(impl_->mu);
  std::ostringstream out;
  for (const auto& [name, counter] : impl_->counters) {
    const int64_t value = counter->Value();
    if (value == 0 && !include_zero) continue;
    out << name << " " << value << "\n";
  }
  for (const auto& [name, gauge] : impl_->gauges) {
    const int64_t value = gauge->Value();
    if (value == 0 && !include_zero) continue;
    out << name << " max=" << value << "\n";
  }
  for (const auto& [name, hist] : impl_->histograms) {
    const int64_t count = hist->Count();
    if (count == 0 && !include_zero) continue;
    out << name << " count=" << count
        << " mean_ns=" << (count > 0 ? hist->SumNs() / count : 0)
        << " p50_ns=" << hist->ApproxPercentileNs(0.5)
        << " p99_ns=" << hist->ApproxPercentileNs(0.99) << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter->Reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->Reset();
  for (auto& [name, hist] : impl_->histograms) hist->Reset();
}

}  // namespace metrics
}  // namespace nlidb
