#ifndef NLIDB_COMMON_FAILPOINT_H_
#define NLIDB_COMMON_FAILPOINT_H_

// Fault-injection framework (DESIGN.md "Fault-tolerance architecture").
//
// Library code marks recoverable failure boundaries with named sites:
//
//   NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("checkpoint/after_header"));
//
// and control-flow sites (where the reaction is a fallback, not a
// Status) consult `failpoint::Fire(site)` directly. Sites are inert in
// production: with nothing activated the macro costs exactly one
// relaxed atomic load, the same discipline as trace::Enabled().
//
// Activation is programmatic (`Activate`, `ScopedFailpoint` in tests)
// or via the environment:
//
//   NLIDB_FAILPOINTS="checkpoint/commit=error,seq2seq/beam_exhausted=error"
//   NLIDB_FAILPOINTS="random-delay:12345"   # randomized CI schedule
//
// Actions: `error` (the site returns an injected IoError), `torn_write`
// (the checked-I/O layer commits a truncated file without fsync —
// elsewhere treated like `error`), `delay:<ms>` (sleep, for schedule
// perturbation), `crash` (std::_Exit, skipping destructors and atexit
// hooks — a process death mid-operation). `random-delay:<seed>` is a
// schedule mode, not a per-site action: every site hit gets a
// pseudo-random (seed, site, hit-count)-derived 0-2ms delay with
// probability 1/8. Delays never change results, so the full test suite
// must stay green under any seed.
//
// Every fire increments `failpoint.fired` and `failpoint.<site>` in the
// MetricsRegistry, so tests can assert a site was actually reached.

#include <atomic>
#include <string>

#include "common/status.h"

namespace nlidb {
namespace failpoint {

enum class ActionKind {
  kNone = 0,
  kError,      // site fails with an injected Status
  kTornWrite,  // checked-I/O commit truncates + skips fsync (else kError)
  kDelay,      // sleep delay_ms, then proceed
  kCrash,      // std::_Exit: hard process death at the site
};

struct Action {
  ActionKind kind = ActionKind::kNone;
  int delay_ms = 0;
};

namespace internal {
// Non-zero while any site is activated or random-delay mode is on. The
// relaxed load in AnyActive() is the entire cost of an inactive site.
extern std::atomic<int> g_active;

/// Slow path behind NLIDB_FAILPOINT: fires the site and converts the
/// action to a Status (kError/kTornWrite -> injected IoError, kDelay ->
/// sleep then Ok, kCrash -> process exit).
Status Evaluate(const char* site);
}  // namespace internal

/// True when any failpoint (or the random-delay schedule) is active.
inline bool AnyActive() {
  return internal::g_active.load(std::memory_order_relaxed) != 0;
}

/// Fires `site` and returns the configured action (kNone when inactive
/// or unconfigured). Increments the site's counter; executes kDelay
/// sleeps itself (returning the action afterwards) so control-flow
/// callers only need to branch on kind. Does NOT execute kCrash — the
/// caller decides; `Evaluate` and the checked-I/O layer do.
Action Fire(const char* site);

/// Activates `site` with a spec: "error" | "torn_write" | "crash" |
/// "delay:<ms>". InvalidArgument on a malformed spec.
Status Activate(const std::string& site, const std::string& spec);

/// Activates the random-delay schedule mode programmatically — the same
/// mode NLIDB_FAILPOINTS="random-delay:<seed>" enables from the
/// environment. The attack soak driver uses this to perturb thread
/// schedules under a caller-chosen seed. Deactivated by DeactivateAll().
void ActivateRandomDelay(uint64_t seed);

/// True while the random-delay schedule is on (env- or API-activated).
bool RandomDelayActive();

/// Deactivates one site / all sites (and random-delay mode).
void Deactivate(const std::string& site);
void DeactivateAll();

/// Parses NLIDB_FAILPOINTS once (comma-separated site=spec tokens plus
/// the optional "random-delay:<seed>" mode). Safe to call repeatedly
/// from every site-hosting entry point; malformed tokens are logged and
/// skipped rather than aborting startup.
void InitFromEnv();

/// RAII activation for tests: activates in the constructor, deactivates
/// in the destructor.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, const std::string& spec)
      : site_(std::move(site)) {
    Status s = Activate(site_, spec);
    Status::IgnoreError(s);  // malformed specs are programming errors in tests
  }
  ~ScopedFailpoint() { Deactivate(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace failpoint
}  // namespace nlidb

/// Status-returning injection site. One relaxed atomic load when no
/// failpoint is active.
#define NLIDB_FAILPOINT(site)                  \
  (::nlidb::failpoint::AnyActive()             \
       ? ::nlidb::failpoint::internal::Evaluate(site) \
       : ::nlidb::Status::Ok())

#endif  // NLIDB_COMMON_FAILPOINT_H_
