#ifndef NLIDB_COMMON_LOGGING_H_
#define NLIDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace nlidb {

/// Log severities. kFatal aborts after emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity; messages below it are dropped.
/// Defaults to kInfo; tests lower it to kDebug when diagnosing.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace nlidb

#define NLIDB_LOG(level)                                                   \
  if (static_cast<int>(::nlidb::LogLevel::k##level) <                      \
      static_cast<int>(::nlidb::GetLogLevel())) {                          \
  } else /* NOLINT */                                                      \
    ::nlidb::internal_logging::LogMessage(::nlidb::LogLevel::k##level,     \
                                          __FILE__, __LINE__)              \
        .stream()

/// Process-fatal invariant check: active in all build modes.
#define NLIDB_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::nlidb::internal_logging::LogMessage(::nlidb::LogLevel::kFatal,         \
                                        __FILE__, __LINE__)                \
          .stream()                                                        \
      << "Check failed: " #cond " "

#endif  // NLIDB_COMMON_LOGGING_H_
