#ifndef NLIDB_COMMON_THREAD_POOL_H_
#define NLIDB_COMMON_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace nlidb {

/// A fixed pool of worker threads with a blocking `ParallelFor` helper.
///
/// Design constraints (DESIGN.md "Performance architecture"):
///  - No work stealing: `ParallelFor` statically partitions [begin, end)
///    into one contiguous chunk per thread, so every index is processed by
///    exactly one thread and callers that write results by index get
///    deterministic output regardless of scheduling.
///  - The calling thread participates (a pool of parallelism N starts
///    N - 1 workers), so parallelism 1 degenerates to a plain serial loop
///    with no synchronization.
///  - Nested ParallelFor calls from inside a worker run inline on the
///    worker (never re-enqueue), which makes nesting safe by construction:
///    a kernel-level ParallelFor inside an annotator-level fan-out cannot
///    deadlock the pool.
///  - Exceptions thrown by the body are captured and the first one (by
///    chunk index) is rethrown on the calling thread after all chunks
///    finish, so the pool is always left in a reusable state.
class ThreadPool {
 public:
  /// Creates a pool with total parallelism `parallelism` (clamped to
  /// >= 1); `parallelism - 1` worker threads are started.
  explicit ThreadPool(int parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: workers + the calling thread.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end) and blocks until every chunk finished. Chunk c covers
  /// indices [begin + c*len/P, begin + (c+1)*len/P). Serial fallback (the
  /// body is invoked once with the whole range on the calling thread)
  /// when the pool has parallelism 1, the range has fewer than two
  /// indices, or the caller is itself a pool worker.
  void ParallelFor(int begin, int end,
                   const std::function<void(int, int)>& body);

  /// Cancellation-aware variant: a chunk whose turn comes after `ctx`
  /// expired is skipped instead of run, and the call returns
  /// DeadlineExceeded when any chunk was skipped (Ok otherwise).
  /// Chunk bodies already in flight are never interrupted — bodies
  /// needing finer granularity poll `ctx` themselves.
  Status ParallelFor(int begin, int end,
                     const std::function<void(int, int)>& body,
                     const CancelContext& ctx);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Used to force nested parallel sections inline.
  static bool InWorker();

  /// The process-wide pool. Lazily constructed with
  /// `DefaultParallelism()` threads on first use.
  static ThreadPool& Global();

  /// Resizes the global pool (no-op if the size already matches). Must
  /// not race with in-flight ParallelFor calls on the global pool; call
  /// it at configuration time (pipeline construction, bench/test main).
  static void SetGlobalParallelism(int parallelism);

  /// Parallelism the global pool would be (or was) created with: the
  /// NLIDB_NUM_THREADS environment variable when set, otherwise
  /// std::thread::hardware_concurrency(), always clamped to >= 1.
  /// NLIDB_NUM_THREADS=1 forces every parallel path in the system serial
  /// (the debugging knob from core/config.cc).
  static int DefaultParallelism();

 private:
  struct LoopState;  // per-ParallelFor completion latch + error slots
  struct Job {
    const std::function<void(int, int)>* body;
    int begin, end;
    int chunk;
    LoopState* loop;
    // Trace span open on the enqueuing thread, re-installed around the
    // body so worker-side spans join the enqueuing request's tree.
    int trace_parent;
  };

  void WorkerLoop() NLIDB_LOCKS_EXCLUDED(mu_);
  static void RunJob(const Job& job);

  // The worker threads themselves; this std::thread use is the one the
  // raw-thread lint rule exists to funnel everything else through.
  // Written once in the constructor, joined in the destructor; never
  // mutated while workers run.
  std::vector<std::thread> workers_;  // nlidb-lint: disable(mutex-coverage)
  Mutex mu_{"pool.queue"};
  CondVar work_cv_;  // workers wait for jobs
  std::deque<Job> queue_ NLIDB_GUARDED_BY(mu_);
  bool shutdown_ NLIDB_GUARDED_BY(mu_) = false;
};

}  // namespace nlidb

#endif  // NLIDB_COMMON_THREAD_POOL_H_
