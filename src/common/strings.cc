#include "common/strings.h"

#include <cctype>

namespace nlidb {

std::vector<std::string> Split(std::string_view text, char sep,
                               bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      if (i > start || keep_empty) {
        out.emplace_back(text.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool LooksNumeric(std::string_view text) {
  if (text.empty()) return false;
  size_t i = 0;
  if (text[0] == '-') i = 1;
  if (i == text.size()) return false;
  bool seen_dot = false;
  bool seen_digit = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace nlidb
