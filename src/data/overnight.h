#ifndef NLIDB_DATA_OVERNIGHT_H_
#define NLIDB_DATA_OVERNIGHT_H_

#include <string>
#include <utility>
#include <vector>

#include "data/generator.h"

namespace nlidb {
namespace data {

/// An OVERNIGHT-style corpus: five sub-domain datasets evaluated
/// zero-shot by a model trained on the WikiSQL-style corpus (paper
/// Sec. VII-B1). Only sketch-compatible queries are generated, mirroring
/// the paper's "only the sketch compatible ones are considered".
struct OvernightCorpus {
  struct Subdomain {
    std::string name;
    Dataset train;
    Dataset test;
  };
  std::vector<Subdomain> subdomains;
};

/// Generates all five sub-domains (basketball, calendar, housing,
/// recipes, restaurants) with per-sub-domain train/test splits; `config`
/// controls per-sub-domain sizes (num_tables is per sub-domain).
OvernightCorpus GenerateOvernight(const GeneratorConfig& config);

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_OVERNIGHT_H_
