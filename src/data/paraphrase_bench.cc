#include "data/paraphrase_bench.h"

namespace nlidb {
namespace data {

ParaphraseBenchCorpus GenerateParaphraseBench(const GeneratorConfig& config) {
  ParaphraseBenchCorpus corpus;
  const QuestionStyle styles[] = {
      QuestionStyle::kNaive,         QuestionStyle::kSyntactic,
      QuestionStyle::kLexical,       QuestionStyle::kMorphological,
      QuestionStyle::kSemantic,      QuestionStyle::kMissing,
  };
  uint64_t seed = config.seed;
  for (QuestionStyle style : styles) {
    GeneratorConfig sub = config;
    sub.style = style;
    sub.seed = seed++;
    WikiSqlGenerator gen(sub, {PatientsDomain()});
    ParaphraseBenchCorpus::Category cat;
    cat.style = style;
    cat.dataset = gen.Generate();
    corpus.categories.push_back(std::move(cat));
  }
  return corpus;
}

}  // namespace data
}  // namespace nlidb
