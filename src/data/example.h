#ifndef NLIDB_DATA_EXAMPLE_H_
#define NLIDB_DATA_EXAMPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/query.h"
#include "sql/table.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace data {

/// Gold mention annotation for one WHERE-clause condition.
struct MentionInfo {
  int column = 0;               // schema column index
  text::Span column_span;       // tokens mentioning the column; empty when
                                // the mention is implicit (challenge 3)
  text::Span value_span;        // tokens carrying the condition value
  bool column_explicit = true;  // false for implicit mentions
};

/// One (question, SQL) record with its table and gold annotations.
///
/// Gold spans come for free from the template generator; on real data they
/// would be distant-supervised from the SQL as the paper does. They train
/// the column-mention classifier and evaluate mention detection; the
/// seq2seq translator never sees them at inference time.
struct Example {
  std::string question;
  std::vector<std::string> tokens;
  sql::SelectQuery query;
  std::shared_ptr<const sql::Table> table;

  std::vector<MentionInfo> where_mentions;  // one per query.conditions entry
  text::Span select_mention;                // mention of the select column
  bool select_explicit = true;

  const sql::Schema& schema() const { return table->schema(); }
};

/// A split of examples over a set of tables.
struct Dataset {
  std::vector<std::shared_ptr<const sql::Table>> tables;
  std::vector<Example> examples;

  size_t size() const { return examples.size(); }
};

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_EXAMPLE_H_
