#include "data/overnight.h"

namespace nlidb {
namespace data {

OvernightCorpus GenerateOvernight(const GeneratorConfig& config) {
  OvernightCorpus corpus;
  uint64_t seed = config.seed;
  for (const DomainSpec& domain : OvernightDomains()) {
    GeneratorConfig sub = config;
    sub.seed = seed++;
    WikiSqlGenerator gen(sub, {domain});
    Dataset all = gen.Generate();
    OvernightCorpus::Subdomain out;
    out.name = domain.name;
    const int n = static_cast<int>(all.tables.size());
    const int train_end = (n * 7) / 10;
    for (int t = 0; t < n; ++t) {
      (t < train_end ? out.train : out.test).tables.push_back(all.tables[t]);
    }
    for (auto& ex : all.examples) {
      bool in_train = false;
      for (int t = 0; t < train_end && !in_train; ++t) {
        in_train = all.tables[t] == ex.table;
      }
      (in_train ? out.train : out.test).examples.push_back(std::move(ex));
    }
    corpus.subdomains.push_back(std::move(out));
  }
  return corpus;
}

}  // namespace data
}  // namespace nlidb
