#ifndef NLIDB_DATA_GENERATOR_H_
#define NLIDB_DATA_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/domain.h"
#include "data/example.h"

namespace nlidb {
namespace data {

/// Linguistic style of generated questions. `kMixed` draws freely (the
/// WikiSQL-style corpus); the specific styles generate the six
/// ParaphraseBench categories.
enum class QuestionStyle {
  kMixed,
  kNaive,          // plain "what is the <c> with <c> <v>"
  kSyntactic,      // conditions fronted: "for the entry <cond>, what ..."
  kLexical,        // non-canonical synonym column mentions
  kMorphological,  // inflected column mentions ("films", "directors")
  kSemantic,       // paraphrase select/verb templates
  kMissing,        // implicit mentions only (column wording dropped)
};

const char* QuestionStyleName(QuestionStyle style);

/// Knobs for the synthetic corpus generator.
struct GeneratorConfig {
  int num_tables = 60;
  int rows_per_table = 12;
  int questions_per_table = 8;
  int min_columns = 4;
  int max_columns = 6;
  int max_conditions = 3;
  /// Probability of an aggregate on a numeric select column.
  float agg_probability = 0.25f;
  /// Probability a condition value is counterfactual (absent from the
  /// table) — challenge 4.
  float counterfactual_probability = 0.3f;
  QuestionStyle style = QuestionStyle::kMixed;
  uint64_t seed = 42;
};

/// Generates WikiSQL-style (question, SQL, table) corpora from domain
/// specifications, with gold mention spans tracked through template
/// instantiation.
///
/// Substitutes for the WikiSQL dataset (unavailable offline) while
/// preserving the properties the paper's evaluation depends on: unseen
/// tables at test time, paraphrased/implicit/counterfactual mentions,
/// multi-condition conjunctive WHERE clauses. See DESIGN.md.
class WikiSqlGenerator {
 public:
  WikiSqlGenerator(GeneratorConfig config, std::vector<DomainSpec> domains);

  /// Generates `config.num_tables` tables with examples attached.
  Dataset Generate();

  /// Generates one table from a randomly chosen domain.
  std::shared_ptr<sql::Table> GenerateTable(int table_id);

  /// Generates one example against `table` (whose domain spec is the one
  /// used to create it). Exposed for tests.
  Example GenerateExample(const std::shared_ptr<const sql::Table>& table,
                          const DomainSpec& domain);

  Rng& rng() { return rng_; }

 private:
  GeneratorConfig config_;
  std::vector<DomainSpec> domains_;
  std::vector<int> table_domain_;  // table id -> domain index
  Rng rng_;
};

/// Train/dev/test with table-disjoint splits (the WikiSQL protocol:
/// "tables are not shared among the train/validation/test splits").
struct Splits {
  Dataset train;
  Dataset dev;
  Dataset test;
};

/// Builds the full WikiSQL-style corpus and splits its tables 70/15/15.
Splits GenerateWikiSqlSplits(const GeneratorConfig& config);

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_GENERATOR_H_
