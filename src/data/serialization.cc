#include "data/serialization.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/file_io.h"
#include "common/strings.h"
#include "sql/parser.h"

namespace nlidb {
namespace data {

namespace {

std::string CellToField(const sql::Value& v) {
  if (v.is_real()) return "R:" + v.ToString();
  return "T:" + v.text();
}

StatusOr<sql::Value> FieldToCell(const std::string& field) {
  if (StartsWith(field, "R:")) {
    return sql::Value::Real(std::strtod(field.c_str() + 2, nullptr));
  }
  if (StartsWith(field, "T:")) {
    return sql::Value::Text(field.substr(2));
  }
  return Status::ParseError("bad cell field: " + field);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  // Serialize into memory, then write through the crash-safe layer so a
  // disk-full or mid-write crash can never leave a truncated dataset at
  // `path`.
  std::ostringstream out;
  std::unordered_map<const sql::Table*, int> table_index;
  out << "TABLES " << dataset.tables.size() << "\n";
  for (size_t t = 0; t < dataset.tables.size(); ++t) {
    const sql::Table& table = *dataset.tables[t];
    table_index[&table] = static_cast<int>(t);
    out << "TABLE\t" << table.name() << "\t" << table.num_columns() << "\t"
        << table.num_rows() << "\n";
    for (int c = 0; c < table.num_columns(); ++c) {
      const auto& col = table.schema().column(c);
      out << "COL\t" << col.name << "\t" << sql::DataTypeName(col.type) << "\n";
    }
    for (int r = 0; r < table.num_rows(); ++r) {
      out << "ROW";
      for (int c = 0; c < table.num_columns(); ++c) {
        out << "\t" << CellToField(table.Cell(r, c));
      }
      out << "\n";
    }
  }
  out << "EXAMPLES " << dataset.examples.size() << "\n";
  for (const Example& ex : dataset.examples) {
    auto it = table_index.find(ex.table.get());
    if (it == table_index.end()) {
      return Status::InvalidArgument("example references unknown table");
    }
    out << "EXAMPLE\t" << it->second << "\n";
    out << "Q\t" << ex.question << "\n";
    out << "SQL\t" << sql::ToSql(ex.query, ex.schema()) << "\n";
    out << "SEL\t" << ex.select_mention.begin << "\t" << ex.select_mention.end
        << "\t" << (ex.select_explicit ? 1 : 0) << "\n";
    for (const MentionInfo& m : ex.where_mentions) {
      out << "MEN\t" << m.column << "\t" << m.column_span.begin << "\t"
          << m.column_span.end << "\t" << (m.column_explicit ? 1 : 0) << "\t"
          << m.value_span.begin << "\t" << m.value_span.end << "\n";
    }
    out << "END\n";
  }
  return io::WriteFileAtomic(path, out.str(), "dataset");
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Dataset ds;
  std::string line;
  // Tolerate CRLF files: every line read strips one trailing '\r'.
  auto read_line = [&in](std::string* l) {
    if (!std::getline(in, *l)) return false;
    StripTrailingCr(l);
    return true;
  };

  if (!read_line(&line)) return Status::ParseError("empty file");
  auto header = SplitWhitespace(line);
  if (header.size() != 2 || header[0] != "TABLES") {
    return Status::ParseError("expected TABLES header");
  }
  const int num_tables = std::atoi(header[1].c_str());
  for (int t = 0; t < num_tables; ++t) {
    if (!read_line(&line)) return Status::ParseError("truncated table");
    auto fields = Split(line, '\t', /*keep_empty=*/true);
    if (fields.size() != 4 || fields[0] != "TABLE") {
      return Status::ParseError("expected TABLE line: " + line);
    }
    const std::string name = fields[1];
    const int ncols = std::atoi(fields[2].c_str());
    const int nrows = std::atoi(fields[3].c_str());
    sql::Schema schema;
    for (int c = 0; c < ncols; ++c) {
      if (!read_line(&line)) return Status::ParseError("truncated COL");
      auto cf = Split(line, '\t', true);
      if (cf.size() != 3 || cf[0] != "COL") {
        return Status::ParseError("expected COL line: " + line);
      }
      schema.AddColumn({cf[1], cf[2] == "real" ? sql::DataType::kReal
                                               : sql::DataType::kText});
    }
    auto table = std::make_shared<sql::Table>(name, schema);
    for (int r = 0; r < nrows; ++r) {
      if (!read_line(&line)) return Status::ParseError("truncated ROW");
      auto rf = Split(line, '\t', true);
      if (rf.empty() || rf[0] != "ROW" ||
          static_cast<int>(rf.size()) != ncols + 1) {
        return Status::ParseError("bad ROW line: " + line);
      }
      std::vector<sql::Value> cells;
      for (int c = 0; c < ncols; ++c) {
        auto cell = FieldToCell(rf[c + 1]);
        if (!cell.ok()) return cell.status();
        cells.push_back(std::move(cell).value());
      }
      NLIDB_RETURN_IF_ERROR(table->AddRow(std::move(cells)));
    }
    ds.tables.push_back(table);
  }

  if (!read_line(&line)) return Status::ParseError("missing EXAMPLES");
  header = SplitWhitespace(line);
  if (header.size() != 2 || header[0] != "EXAMPLES") {
    return Status::ParseError("expected EXAMPLES header");
  }
  const int num_examples = std::atoi(header[1].c_str());
  for (int e = 0; e < num_examples; ++e) {
    if (!read_line(&line)) return Status::ParseError("truncated example");
    auto ef = Split(line, '\t', true);
    if (ef.size() != 2 || ef[0] != "EXAMPLE") {
      return Status::ParseError("expected EXAMPLE line: " + line);
    }
    const int t = std::atoi(ef[1].c_str());
    if (t < 0 || t >= static_cast<int>(ds.tables.size())) {
      return Status::ParseError("example table index out of range");
    }
    Example ex;
    ex.table = ds.tables[t];
    if (!read_line(&line) || !StartsWith(line, "Q\t")) {
      return Status::ParseError("expected Q line");
    }
    ex.question = line.substr(2);
    ex.tokens = SplitWhitespace(ex.question);
    if (!read_line(&line) || !StartsWith(line, "SQL\t")) {
      return Status::ParseError("expected SQL line");
    }
    auto query = sql::ParseSql(line.substr(4), ex.table->schema());
    if (!query.ok()) return query.status();
    ex.query = std::move(query).value();
    if (!read_line(&line) || !StartsWith(line, "SEL\t")) {
      return Status::ParseError("expected SEL line");
    }
    {
      auto sf = Split(line, '\t', true);
      if (sf.size() != 4) return Status::ParseError("bad SEL line");
      ex.select_mention = {std::atoi(sf[1].c_str()), std::atoi(sf[2].c_str())};
      ex.select_explicit = sf[3] == "1";
    }
    for (;;) {
      if (!read_line(&line)) return Status::ParseError("truncated MEN");
      if (line == "END") break;
      auto mf = Split(line, '\t', true);
      if (mf.size() != 7 || mf[0] != "MEN") {
        return Status::ParseError("bad MEN line: " + line);
      }
      MentionInfo m;
      m.column = std::atoi(mf[1].c_str());
      m.column_span = {std::atoi(mf[2].c_str()), std::atoi(mf[3].c_str())};
      m.column_explicit = mf[4] == "1";
      m.value_span = {std::atoi(mf[5].c_str()), std::atoi(mf[6].c_str())};
      ex.where_mentions.push_back(m);
    }
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

}  // namespace data
}  // namespace nlidb
