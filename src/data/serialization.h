#ifndef NLIDB_DATA_SERIALIZATION_H_
#define NLIDB_DATA_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "data/example.h"

namespace nlidb {
namespace data {

/// Writes a dataset to a line-oriented text file (tables, then examples
/// with gold SQL and mention spans). Tab is the in-record separator, so
/// cell text must not contain tabs (generated data never does).
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDataset.
StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_SERIALIZATION_H_
