#ifndef NLIDB_DATA_PARAPHRASE_BENCH_H_
#define NLIDB_DATA_PARAPHRASE_BENCH_H_

#include <string>
#include <vector>

#include "data/generator.h"

namespace nlidb {
namespace data {

/// A ParaphraseBench-style corpus (Utama et al. [40]): the same patients
/// domain asked in six linguistic-variation categories. The paper
/// evaluates its WikiSQL-trained model zero-shot per category
/// (Table IV(b)); the expected degradation order is
/// naive > syntactic > morphological > lexical > semantic >> missing.
struct ParaphraseBenchCorpus {
  struct Category {
    QuestionStyle style = QuestionStyle::kNaive;
    Dataset dataset;
  };
  std::vector<Category> categories;
};

/// Generates all six categories over shared patients-domain tables;
/// `config.num_tables` tables and `config.questions_per_table` questions
/// per category.
ParaphraseBenchCorpus GenerateParaphraseBench(const GeneratorConfig& config);

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_PARAPHRASE_BENCH_H_
