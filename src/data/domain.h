#ifndef NLIDB_DATA_DOMAIN_H_
#define NLIDB_DATA_DOMAIN_H_

#include <string>
#include <vector>

#include "sql/value.h"
#include "text/embedding_provider.h"

namespace nlidb {
namespace data {

/// A pool of surface strings values are drawn from (film-title words,
/// first names, cities, ...). Every pool doubles as an embedding cluster
/// so that values of the same column land close in embedding space — the
/// property the paper gets from GloVe and that the value detector's
/// column statistics rely on.
struct ValuePool {
  std::string name;
  std::vector<std::string> items;
};

/// How a column's values are produced.
struct ValueSpec {
  /// Text values: one item drawn from each pool in `compose_pools`
  /// ("firstname" + "surname" makes a person name).
  std::vector<std::string> compose_pools;
  /// Real values: uniform in [num_lo, num_hi], rounded when `integer`.
  double num_lo = 0.0;
  double num_hi = 0.0;
  bool integer = true;
};

/// Full linguistic profile of a column within a domain.
struct ColumnSpec {
  std::string name;               // canonical snake_case name
  sql::DataType type = sql::DataType::kText;
  ValueSpec values;

  /// Question word used when this column is selected ("which", "who",
  /// "when", "where", "what", "how many").
  std::string wh_word = "what";

  /// Noun phrases that mention the column (P_c); [0] is canonical.
  /// Used in select phrases and "with <c> <v>" conditions.
  std::vector<std::string> mention_phrases;

  /// Complete select-phrase paraphrases that replace the generic
  /// "what is the <c>" opener ("how many people live" for population) —
  /// the paper's P_c metadata feeding paraphrase mentions (challenge 2).
  std::vector<std::string> select_templates;

  /// Verb-style condition phrases containing "{v}" ("directed by {v}",
  /// "won by {v}"). These exercise paraphrase mentions (challenge 2).
  std::vector<std::string> verb_templates;

  /// Implicit condition phrases containing only "{v}" with no column
  /// wording at all ("in {v}" for a county column) — challenge 3.
  std::vector<std::string> implicit_templates;
};

/// A topical domain: a family of schemas plus its language.
struct DomainSpec {
  std::string name;
  std::vector<ColumnSpec> columns;  // schema instances sample subsets
};

/// All value pools used across domains.
const std::vector<ValuePool>& ValuePools();

/// Training domains (WikiSQL-style corpus draws schemas from these).
const std::vector<DomainSpec>& TrainDomains();

/// OVERNIGHT-style transfer domains: basketball, calendar, housing,
/// recipes, restaurants.
const std::vector<DomainSpec>& OvernightDomains();

/// The patients domain used by the ParaphraseBench-style benchmark.
const DomainSpec& PatientsDomain();

/// Looks up a pool by name (fatal if absent).
const ValuePool& GetPool(const std::string& name);

/// Registers every value pool and the default linguistic lexicon as
/// clusters in `provider`. Call once before using the provider with data
/// from these domains.
void RegisterDomainClusters(text::EmbeddingProvider& provider);

}  // namespace data
}  // namespace nlidb

#endif  // NLIDB_DATA_DOMAIN_H_
