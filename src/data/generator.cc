#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "sql/value.h"

namespace nlidb {
namespace data {

namespace {

const char* kExplicitEqForms[] = {"with {c} {v}", "whose {c} is {v}",
                                  "with the {c} {v}"};
const char* kExplicitGtForms[] = {"with {c} over {v}",
                                  "whose {c} is greater than {v}",
                                  "with more than {v} {c}"};
const char* kExplicitLtForms[] = {"with {c} under {v}",
                                  "whose {c} is less than {v}",
                                  "with fewer than {v} {c}"};

/// Incrementally builds a tokenized question while recording spans.
class QuestionAssembler {
 public:
  /// Appends the whitespace-tokenized words of `phrase`; returns their span.
  text::Span Append(const std::string& phrase) {
    const std::vector<std::string> words = SplitWhitespace(phrase);
    text::Span span{static_cast<int>(tokens_.size()),
                    static_cast<int>(tokens_.size() + words.size())};
    for (const auto& w : words) tokens_.push_back(ToLower(w));
    return span;
  }

  /// Instantiates a template containing "{v}" (and optionally "{c}").
  /// Returns the value span via `value_span` and the column-mention span
  /// (the longest contiguous run of non-value, non-function template
  /// words; empty if the template has no column wording) via `col_span`.
  void AppendTemplate(const std::string& tmpl, const std::string& col_phrase,
                      const std::string& value_text, text::Span* value_span,
                      text::Span* col_span) {
    *value_span = text::Span{};
    *col_span = text::Span{};
    text::Span before{static_cast<int>(tokens_.size()),
                      static_cast<int>(tokens_.size())};
    bool seen_value = false;
    text::Span after{};
    for (const auto& piece : SplitWhitespace(tmpl)) {
      if (piece == "{v}") {
        *value_span = Append(value_text);
        seen_value = true;
        after = text::Span{static_cast<int>(tokens_.size()),
                           static_cast<int>(tokens_.size())};
      } else if (piece == "{c}") {
        text::Span s = Append(col_phrase);
        if (!seen_value) {
          before.end = s.end;
        } else {
          after.end = s.end;
        }
        // An explicit {c} placeholder pins the column span exactly.
        *col_span = s;
      } else {
        text::Span s = Append(piece);
        if (!seen_value) {
          before.end = s.end;
        } else {
          after.end = s.end;
        }
      }
    }
    if (col_span->empty()) {
      // Verb template: the mention is the template's own wording; take the
      // longer contiguous side around the value.
      *col_span = (before.length() >= after.length()) ? before : after;
    }
  }

  const std::vector<std::string>& tokens() const { return tokens_; }

 private:
  std::vector<std::string> tokens_;
};

std::string RenderValue(const sql::Value& value) {
  return ToLower(value.ToString());
}

const ColumnSpec* FindSpec(const DomainSpec& domain, const std::string& name) {
  for (const auto& c : domain.columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

/// Inflects the last word of a phrase: toggles a plural-ish 's'.
std::string MorphPhrase(const std::string& phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  if (words.empty()) return phrase;
  std::string& last = words.back();
  if (last.size() > 3 && last.back() == 's') {
    last.pop_back();
  } else {
    last += 's';
  }
  return Join(words, " ");
}

}  // namespace

const char* QuestionStyleName(QuestionStyle style) {
  switch (style) {
    case QuestionStyle::kMixed:
      return "mixed";
    case QuestionStyle::kNaive:
      return "naive";
    case QuestionStyle::kSyntactic:
      return "syntactic";
    case QuestionStyle::kLexical:
      return "lexical";
    case QuestionStyle::kMorphological:
      return "morphological";
    case QuestionStyle::kSemantic:
      return "semantic";
    case QuestionStyle::kMissing:
      return "missing";
  }
  return "?";
}

WikiSqlGenerator::WikiSqlGenerator(GeneratorConfig config,
                                   std::vector<DomainSpec> domains)
    : config_(config), domains_(std::move(domains)), rng_(config.seed) {
  NLIDB_CHECK(!domains_.empty()) << "generator needs domains";
  NLIDB_CHECK(config_.min_columns >= 2) << "need at least two columns";
}

namespace {

sql::Value ComposeValue(const ColumnSpec& spec, Rng& rng) {
  if (spec.type == sql::DataType::kReal) {
    if (spec.values.integer) {
      return sql::Value::Real(static_cast<double>(rng.NextInt(
          static_cast<int>(spec.values.num_lo),
          static_cast<int>(spec.values.num_hi))));
    }
    return sql::Value::Real(rng.NextFloat(
        static_cast<float>(spec.values.num_lo),
        static_cast<float>(spec.values.num_hi)));
  }
  std::string text;
  for (const auto& pool_name : spec.values.compose_pools) {
    const ValuePool& pool = GetPool(pool_name);
    if (!text.empty()) text += ' ';
    text += rng.Choice(pool.items);
  }
  return sql::Value::Text(text);
}

}  // namespace

std::shared_ptr<sql::Table> WikiSqlGenerator::GenerateTable(int table_id) {
  const int domain_idx = static_cast<int>(rng_.NextUint64(domains_.size()));
  if (static_cast<int>(table_domain_.size()) <= table_id) {
    table_domain_.resize(table_id + 1, 0);
  }
  table_domain_[table_id] = domain_idx;
  const DomainSpec& domain = domains_[domain_idx];

  const int total = static_cast<int>(domain.columns.size());
  const int want = std::min(
      total, rng_.NextInt(config_.min_columns,
                          std::min(config_.max_columns, total)));
  std::vector<int> indices(total);
  for (int i = 0; i < total; ++i) indices[i] = i;
  rng_.Shuffle(indices);
  indices.resize(want);
  std::sort(indices.begin(), indices.end());

  sql::Schema schema;
  std::vector<const ColumnSpec*> specs;
  for (int idx : indices) {
    const ColumnSpec& spec = domain.columns[idx];
    schema.AddColumn({spec.name, spec.type});
    specs.push_back(&spec);
  }
  auto table = std::make_shared<sql::Table>(
      domain.name + "_" + std::to_string(table_id), schema);
  for (int r = 0; r < config_.rows_per_table; ++r) {
    std::vector<sql::Value> row;
    row.reserve(specs.size());
    for (const ColumnSpec* spec : specs) {
      row.push_back(ComposeValue(*spec, rng_));
    }
    NLIDB_CHECK(table->AddRow(std::move(row)).ok()) << "generated row invalid";
  }
  return table;
}

Example WikiSqlGenerator::GenerateExample(
    const std::shared_ptr<const sql::Table>& table, const DomainSpec& domain) {
  const sql::Schema& schema = table->schema();
  const int ncols = schema.num_columns();
  NLIDB_CHECK(ncols >= 2) << "table too narrow for question generation";

  // --- choose the logical query -----------------------------------------
  const int select_col = static_cast<int>(rng_.NextUint64(ncols));
  const int max_conds =
      std::min(config_.max_conditions, ncols - 1);
  int num_conds = 1;
  {
    const float r = rng_.NextFloat();
    if (max_conds >= 3 && r > 0.80f) num_conds = 3;
    else if (max_conds >= 2 && r > 0.45f) num_conds = 2;
  }
  std::vector<int> cond_cols;
  {
    std::vector<int> candidates;
    for (int i = 0; i < ncols; ++i) {
      if (i != select_col) candidates.push_back(i);
    }
    rng_.Shuffle(candidates);
    candidates.resize(num_conds);
    cond_cols = candidates;
  }

  Example ex;
  ex.table = table;
  ex.query.select_column = select_col;

  const ColumnSpec* select_spec = FindSpec(domain, schema.column(select_col).name);
  NLIDB_CHECK(select_spec != nullptr) << "missing spec for select column";

  // Aggregate only on numeric select columns (plus the occasional COUNT).
  sql::Aggregate agg = sql::Aggregate::kNone;
  if (select_spec->type == sql::DataType::kReal &&
      rng_.NextBool(config_.agg_probability)) {
    const sql::Aggregate choices[] = {sql::Aggregate::kMax, sql::Aggregate::kMin,
                                      sql::Aggregate::kSum, sql::Aggregate::kAvg};
    agg = choices[rng_.NextUint64(4)];
  } else if (rng_.NextBool(0.07f)) {
    agg = sql::Aggregate::kCount;
  }
  ex.query.agg = agg;

  // --- choose conditions --------------------------------------------------
  struct PlannedCond {
    const ColumnSpec* spec;
    sql::Condition cond;
  };
  std::vector<PlannedCond> planned;
  for (int col : cond_cols) {
    const ColumnSpec* spec = FindSpec(domain, schema.column(col).name);
    NLIDB_CHECK(spec != nullptr) << "missing spec for condition column";
    sql::Condition cond;
    cond.column = col;
    if (spec->type == sql::DataType::kReal) {
      const float r = rng_.NextFloat();
      cond.op = r < 0.6f ? sql::CondOp::kEq
                         : (r < 0.8f ? sql::CondOp::kGt : sql::CondOp::kLt);
    } else {
      cond.op = sql::CondOp::kEq;
    }
    if (rng_.NextBool(config_.counterfactual_probability) ||
        table->num_rows() == 0) {
      cond.value = ComposeValue(*spec, rng_);  // possibly counterfactual
    } else {
      const int row = static_cast<int>(rng_.NextUint64(table->num_rows()));
      cond.value = table->Cell(row, col);
    }
    planned.push_back({spec, cond});
  }

  // --- realize natural language -------------------------------------------
  const QuestionStyle style = config_.style;
  auto pick_mention = [&](const ColumnSpec& spec) -> std::string {
    std::string phrase = spec.mention_phrases[0];
    switch (style) {
      case QuestionStyle::kLexical:
        if (spec.mention_phrases.size() > 1) {
          phrase = spec.mention_phrases[1 + rng_.NextUint64(
                                                spec.mention_phrases.size() - 1)];
        }
        break;
      case QuestionStyle::kMorphological:
        phrase = MorphPhrase(phrase);
        break;
      case QuestionStyle::kMixed: {
        const float r = rng_.NextFloat();
        if (r < 0.25f && spec.mention_phrases.size() > 1) {
          phrase = spec.mention_phrases[1 + rng_.NextUint64(
                                                spec.mention_phrases.size() - 1)];
        } else if (r < 0.33f) {
          phrase = MorphPhrase(phrase);
        }
        break;
      }
      default:
        break;
    }
    return phrase;
  };

  QuestionAssembler qa;

  // Condition renderer used by both orderings.
  auto render_cond = [&](const PlannedCond& pc, MentionInfo* info) {
    const ColumnSpec& spec = *pc.spec;
    const std::string value_text = RenderValue(pc.cond.value);
    const std::string col_phrase = pick_mention(spec);
    std::string tmpl;
    bool implicit = false;

    const bool has_verb = !spec.verb_templates.empty() &&
                          pc.cond.op == sql::CondOp::kEq;
    const bool has_implicit = !spec.implicit_templates.empty() &&
                              pc.cond.op == sql::CondOp::kEq;
    auto explicit_form = [&]() -> std::string {
      switch (pc.cond.op) {
        case sql::CondOp::kGt:
          return kExplicitGtForms[rng_.NextUint64(3)];
        case sql::CondOp::kLt:
          return kExplicitLtForms[rng_.NextUint64(3)];
        case sql::CondOp::kEq:
        default:
          return kExplicitEqForms[rng_.NextUint64(3)];
      }
    };

    switch (style) {
      case QuestionStyle::kNaive:
      case QuestionStyle::kSyntactic:
      case QuestionStyle::kLexical:
      case QuestionStyle::kMorphological:
        tmpl = explicit_form();
        break;
      case QuestionStyle::kSemantic:
        if (has_verb) {
          tmpl = spec.verb_templates[rng_.NextUint64(spec.verb_templates.size())];
        } else {
          tmpl = explicit_form();
        }
        break;
      case QuestionStyle::kMissing:
        if (has_implicit) {
          tmpl = spec.implicit_templates[rng_.NextUint64(
              spec.implicit_templates.size())];
          implicit = true;
        } else {
          tmpl = "for {v}";
          implicit = true;
        }
        break;
      case QuestionStyle::kMixed: {
        const float r = rng_.NextFloat();
        if (has_verb && r < 0.35f) {
          tmpl = spec.verb_templates[rng_.NextUint64(spec.verb_templates.size())];
        } else if (has_implicit && r < 0.50f) {
          tmpl = spec.implicit_templates[rng_.NextUint64(
              spec.implicit_templates.size())];
          implicit = true;
        } else {
          tmpl = explicit_form();
        }
        break;
      }
    }

    text::Span value_span, col_span;
    qa.AppendTemplate(tmpl, col_phrase, value_text, &value_span, &col_span);
    info->column = pc.cond.column;
    info->value_span = value_span;
    if (implicit) {
      info->column_explicit = false;
      info->column_span = text::Span{};
    } else {
      info->column_explicit = true;
      info->column_span = col_span;
    }
  };

  // Select phrase renderer.
  auto render_select = [&]() {
    const ColumnSpec& spec = *select_spec;
    const std::string mention = pick_mention(spec);
    switch (agg) {
      case sql::Aggregate::kMax:
        qa.Append("what is the highest");
        ex.select_mention = qa.Append(mention);
        return;
      case sql::Aggregate::kMin:
        qa.Append("what is the lowest");
        ex.select_mention = qa.Append(mention);
        return;
      case sql::Aggregate::kSum:
        qa.Append("what is the total");
        ex.select_mention = qa.Append(mention);
        return;
      case sql::Aggregate::kAvg:
        qa.Append("what is the average");
        ex.select_mention = qa.Append(mention);
        return;
      case sql::Aggregate::kCount:
        qa.Append("how many");
        ex.select_mention = qa.Append(mention);
        qa.Append("entries are there");
        return;
      case sql::Aggregate::kNone:
        break;
    }
    const bool use_template =
        !spec.select_templates.empty() &&
        (style == QuestionStyle::kSemantic ||
         (style == QuestionStyle::kMixed && rng_.NextBool(0.2f)));
    if (use_template) {
      ex.select_mention = qa.Append(
          spec.select_templates[rng_.NextUint64(spec.select_templates.size())]);
      ex.select_explicit = true;
      return;
    }
    const bool wh_variant =
        style == QuestionStyle::kMixed && rng_.NextBool(0.4f);
    if (wh_variant && spec.wh_word == "who") {
      qa.Append("who is the");
      ex.select_mention = qa.Append(mention);
    } else if (wh_variant && spec.wh_word == "which") {
      qa.Append("which");
      ex.select_mention = qa.Append(mention);
    } else if (wh_variant && spec.wh_word == "when") {
      qa.Append("when is the");
      ex.select_mention = qa.Append(mention);
    } else if (wh_variant && spec.wh_word == "where") {
      qa.Append("where is the");
      ex.select_mention = qa.Append(mention);
    } else {
      qa.Append("what is the");
      ex.select_mention = qa.Append(mention);
    }
  };

  ex.where_mentions.resize(planned.size());
  if (style == QuestionStyle::kSyntactic) {
    // Fronted conditions: "for the entry <cond> and <cond> , what is ... ?"
    qa.Append("for the entry");
    for (size_t i = 0; i < planned.size(); ++i) {
      if (i > 0) qa.Append("and");
      render_cond(planned[i], &ex.where_mentions[i]);
    }
    qa.Append(",");
    render_select();
  } else {
    render_select();
    for (size_t i = 0; i < planned.size(); ++i) {
      if (i > 0) qa.Append("and");
      render_cond(planned[i], &ex.where_mentions[i]);
    }
  }
  qa.Append("?");

  for (const auto& pc : planned) ex.query.conditions.push_back(pc.cond);
  ex.tokens = qa.tokens();
  ex.question = Join(ex.tokens, " ");
  return ex;
}

Dataset WikiSqlGenerator::Generate() {
  Dataset ds;
  for (int t = 0; t < config_.num_tables; ++t) {
    std::shared_ptr<sql::Table> table = GenerateTable(t);
    ds.tables.push_back(table);
    const DomainSpec& domain = domains_[table_domain_[t]];
    for (int q = 0; q < config_.questions_per_table; ++q) {
      ds.examples.push_back(GenerateExample(table, domain));
    }
  }
  return ds;
}

Splits GenerateWikiSqlSplits(const GeneratorConfig& config) {
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset all = gen.Generate();
  Splits splits;
  const int n = static_cast<int>(all.tables.size());
  const int train_end = (n * 7) / 10;
  const int dev_end = train_end + std::max(1, (n * 15) / 100);
  for (int t = 0; t < n; ++t) {
    Dataset* target = t < train_end ? &splits.train
                      : t < dev_end ? &splits.dev
                                    : &splits.test;
    target->tables.push_back(all.tables[t]);
  }
  for (auto& ex : all.examples) {
    // Examples follow their table.
    for (int t = 0; t < n; ++t) {
      if (all.tables[t] == ex.table) {
        Dataset* target = t < train_end ? &splits.train
                          : t < dev_end ? &splits.dev
                                        : &splits.test;
        target->examples.push_back(std::move(ex));
        break;
      }
    }
  }
  return splits;
}

}  // namespace data
}  // namespace nlidb
