#include "data/domain.h"

#include <unordered_set>

#include "common/logging.h"

namespace nlidb {
namespace data {

namespace {

/// Numeric helper pools are generated programmatically.
std::vector<std::string> NumberStrings(int lo, int hi, int step = 1) {
  std::vector<std::string> out;
  for (int i = lo; i <= hi; i += step) out.push_back(std::to_string(i));
  return out;
}

std::vector<std::string> SeasonSpans() {
  std::vector<std::string> out;
  for (int y = 1995; y <= 2019; ++y) {
    const int next = (y + 1) % 100;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d-%02d", y, next);
    out.push_back(buf);
  }
  return out;
}

std::vector<ValuePool> BuildPools() {
  std::vector<ValuePool> pools = {
      {"firstname",
       {"piotr", "jerzy", "lebron", "barack", "maria", "chen", "aisha",
        "lars", "sofia", "diego", "emma", "noah", "olivia", "liam", "ava",
        "ethan", "mia", "lucas", "nora", "hugo", "ines", "omar", "yuki",
        "levan", "nana", "seamus", "aoife"}},
      {"surname",
       {"adamczyk", "antczak", "james", "kowalski", "smith", "garcia",
        "muller", "rossi", "tanaka", "novak", "silva", "dubois", "jensen",
        "horvat", "popov", "costa", "schmidt", "murphy", "walsh", "byrne",
        "kelly", "doyle", "uchaneishvili", "djordjadze", "ohara",
        "fitzpatrick"}},
      {"titleword",
       {"chopin", "desire", "stolen", "kisses", "midnight", "river",
        "shadow", "garden", "winter", "crown", "ember", "falcon", "harbor",
        "voyage", "echo", "silence", "aurora", "thunder", "mirage",
        "lantern"}},
      {"county",
       {"mayo", "galway", "kerry", "cork", "donegal", "clare", "sligo",
        "leitrim", "kildare", "meath", "wicklow", "waterford"}},
      {"placename",
       {"carrowteige", "dublin", "westport", "athlone", "limerick",
        "kilkenny", "tralee", "ennis", "shannon", "dingle", "cobh",
        "bantry"}},
      {"irishword",
       {"ceathru", "thaidhg", "oileain", "arann", "gaoth", "dobhair",
        "cois", "fharraige", "ros", "muc", "baile", "cliath"}},
      {"award",
       {"best actor in a leading role", "best actress in a supporting role",
        "best director", "best picture", "best original score",
        "best cinematography", "best foreign film",
        "best adapted screenplay"}},
      {"team",
       {"ferrari", "mclaren", "williams", "mercedes", "lotus", "renault",
        "tyrrell", "brabham", "benetton", "jordan"}},
      {"racename",
       {"monaco grand prix", "british grand prix", "italian grand prix",
        "spanish grand prix", "german grand prix", "japanese grand prix",
        "belgian grand prix", "austrian grand prix"}},
      {"nation",
       {"ireland", "poland", "spain", "italy", "japan", "brazil", "kenya",
        "canada", "norway", "france", "germany", "mexico",
        "northern ireland", "south korea"}},
      {"month",
       {"january", "february", "march", "april", "may", "june", "july",
        "august", "september", "october", "november", "december"}},
      {"label",
       {"parlophone", "motown", "columbia", "decca", "atlantic", "verve",
        "chess", "stax"}},
      {"missionword",
       {"apollo", "gemini", "soyuz", "artemis", "voyager", "luna",
        "mariner", "skylab"}},
      {"agency", {"nasa", "esa", "roscosmos", "jaxa", "isro", "cnsa"}},
      {"outcome",
       {"success", "failure", "partial success", "aborted", "ongoing"}},
      {"party",
       {"democratic", "republican", "labour", "green", "liberal",
        "conservative", "independence"}},
      {"yesno", {"yes", "no"}},
      {"position",
       {"guard", "forward", "center", "point guard", "shooting guard",
        "small forward", "power forward"}},
      {"nbateam",
       {"raptors", "lakers", "celtics", "bulls", "heat", "spurs", "knicks",
        "warriors"}},
      {"meetingword",
       {"budget", "planning", "review", "standup", "strategy", "design",
        "hiring", "quarterly"}},
      {"meetingnoun", {"meeting", "sync", "session", "review"}},
      {"timeofday",
       {"9 am", "10 am", "11 am", "noon", "2 pm", "4 pm", "5 pm"}},
      {"streetword",
       {"oak street", "main street", "park avenue", "river road",
        "hill lane", "church road", "mill lane"}},
      {"neighborhood",
       {"soho", "tribeca", "harlem", "brooklyn", "queens", "chelsea",
        "astoria", "bronx"}},
      {"cuisine",
       {"italian", "thai", "mexican", "japanese", "indian", "french",
        "korean", "greek"}},
      {"ingredient",
       {"tomato", "basil", "chicken", "garlic", "ginger", "salmon",
        "mushroom", "tofu", "lemon", "rice"}},
      {"dishword",
       {"soup", "salad", "curry", "stew", "pasta", "tacos", "bowl", "pie"}},
      {"restaurantnoun", {"kitchen", "bistro", "grill", "cafe", "tavern"}},
      {"pricerange", {"cheap", "moderate", "expensive"}},
      {"diagnosis",
       {"influenza", "diabetes", "asthma", "pneumonia", "migraine",
        "fracture", "hypertension", "appendicitis"}},
      {"author",
       {"austen", "orwell", "tolstoy", "achebe", "murakami", "lessing",
        "borges", "woolf"}},
      {"publisher",
       {"penguin", "vintage", "faber", "hachette", "scribner", "knopf"}},
      {"genre",
       {"mystery", "romance", "biography", "fantasy", "history",
        "poetry"}},
      {"airline",
       {"aer lingus", "ryanair", "lufthansa", "klm", "iberia", "sas"}},
      {"airport",
       {"dublin airport", "heathrow", "schiphol", "frankfurt",
        "madrid barajas", "arlanda"}},
      {"industry",
       {"software", "banking", "retail", "energy", "logistics",
        "pharma"}},
      {"companyword",
       {"nova", "apex", "orbit", "delta", "crest", "summit", "vertex",
        "prime"}},
      {"companynoun", {"systems", "labs", "group", "holdings", "works"}},
  };
  pools.push_back({"daynum", NumberStrings(1, 28)});
  pools.push_back({"yearnum", NumberStrings(1960, 2023)});
  pools.push_back({"seasonspan", SeasonSpans()});
  return pools;
}

// ---------------------------------------------------------------------------
// Column builders
// ---------------------------------------------------------------------------

ColumnSpec TextCol(std::string name, std::vector<std::string> pools,
                   std::string wh, std::vector<std::string> mentions) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = sql::DataType::kText;
  c.values.compose_pools = std::move(pools);
  c.wh_word = std::move(wh);
  c.mention_phrases = std::move(mentions);
  return c;
}

ColumnSpec RealCol(std::string name, double lo, double hi,
                   std::vector<std::string> mentions, bool integer = true) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = sql::DataType::kReal;
  c.values.num_lo = lo;
  c.values.num_hi = hi;
  c.values.integer = integer;
  c.wh_word = "what";
  c.mention_phrases = std::move(mentions);
  return c;
}

// ---------------------------------------------------------------------------
// Train domains
// ---------------------------------------------------------------------------

DomainSpec FilmsDomain() {
  DomainSpec d;
  d.name = "films";
  {
    ColumnSpec c = TextCol("film_name", {"titleword", "titleword"}, "which",
                           {"film name", "film", "movie", "picture"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("director", {"firstname", "surname"}, "who",
                           {"director", "filmmaker"});
    c.verb_templates = {"directed by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("actor", {"firstname", "surname"}, "who",
                           {"actor", "actress", "star"});
    c.verb_templates = {"starring {v}", "featuring {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("year", 1960, 2023, {"year"});
    c.verb_templates = {"released in {v}"};
    c.implicit_templates = {"in {v}", "from {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("nomination", {"award"}, "which",
                           {"nomination", "award"});
    c.verb_templates = {"nominated for {v}", "nominated as {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("box_office", 1, 500, {"box office", "gross"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("nomination_date", {"month", "daynum", "yearnum"},
                           "when", {"nomination date", "date"});
    c.select_templates = {"when was the film nominated"};
    c.verb_templates = {"nominated on {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec GeographyDomain() {
  DomainSpec d;
  d.name = "geography";
  {
    ColumnSpec c = TextCol("county", {"county"}, "where",
                           {"county", "region"});
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("english_name", {"placename"}, "which",
                           {"english name", "name"});
    c.verb_templates = {"with the english name {v}", "named {v}",
                        "called {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("irish_name", {"irishword", "irishword"}, "which",
                           {"irish name"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("population", 100, 9000,
                           {"population", "number of residents"});
    c.select_templates = {"how many people live", "how many inhabitants are"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c =
        RealCol("irish_speakers", 1, 99, {"irish speakers", "speakers"});
    c.select_templates = {"how many irish speakers are"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("area", 10, 900, {"area", "size"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec RacingDomain() {
  DomainSpec d;
  d.name = "racing";
  {
    ColumnSpec c = TextCol("race", {"racename"}, "which",
                           {"race", "grand prix"});
    c.implicit_templates = {"at the {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("winning_driver", {"firstname", "surname"}, "who",
                           {"winning driver", "winner", "driver"});
    c.verb_templates = {"won by {v}", "that {v} won"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("team", {"team"}, "which",
                           {"team", "constructor"});
    c.verb_templates = {"driving for {v}", "racing for {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("date", {"month", "daynum"}, "when", {"date"});
    c.select_templates = {"when was the race held",
                          "when did the race take place"};
    c.verb_templates = {"held on {v}", "played on {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("laps", 40, 80, {"laps"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("points", 1, 50, {"points", "score"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec OlympicsDomain() {
  DomainSpec d;
  d.name = "olympics";
  {
    ColumnSpec c = TextCol("athlete", {"firstname", "surname"}, "who",
                           {"athlete", "player", "golfer"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("nation", {"nation"}, "which",
                           {"nation", "country"});
    c.verb_templates = {"representing {v}", "competing for {v}",
                        "that golfs for {v}"};
    c.implicit_templates = {"from {v}"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("gold", 0, 12, {"gold", "gold medals"}));
  d.columns.push_back(RealCol("silver", 0, 12, {"silver", "silver medals"}));
  d.columns.push_back(RealCol("bronze", 0, 12, {"bronze", "bronze medals"}));
  d.columns.push_back(RealCol("total", 0, 30, {"total", "total medals"}));
  {
    ColumnSpec c = RealCol("rank", 1, 60, {"rank", "ranking", "position"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec MusicDomain() {
  DomainSpec d;
  d.name = "music";
  {
    ColumnSpec c = TextCol("song", {"titleword", "titleword"}, "which",
                           {"song", "single", "track"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("artist", {"firstname", "surname"}, "who",
                           {"artist", "singer", "performer"});
    c.verb_templates = {"performed by {v}", "sung by {v}", "by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("album", {"titleword", "titleword"}, "which",
                           {"album", "record"});
    c.implicit_templates = {"on the album {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("year", 1960, 2023, {"year"});
    c.verb_templates = {"released in {v}", "recorded in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("label", {"label"}, "which",
                           {"label", "record label"});
    c.verb_templates = {"released by {v}", "issued by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("peak_position", 1, 100,
                           {"peak position", "peak", "chart position"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec SpaceDomain() {
  DomainSpec d;
  d.name = "space";
  {
    ColumnSpec c = TextCol("mission", {"missionword", "daynum"}, "which",
                           {"mission", "missions", "flight"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("crew", {"firstname", "surname"}, "who",
                           {"crew", "commander", "astronaut"});
    c.verb_templates = {"commanded by {v}", "flown by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("launch_date", {"month", "daynum", "yearnum"},
                           "when", {"launch date", "date"});
    c.select_templates = {"when did the mission launch"};
    c.verb_templates = {"scheduled to launch on {v}", "launched on {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("duration", 1, 400, {"duration", "length"});
    c.select_templates = {"how many days did the mission last"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("agency", {"agency"}, "which",
                           {"agency", "operator"});
    c.verb_templates = {"operated by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("outcome", {"outcome"}, "what",
                           {"outcome", "result", "status"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec PoliticsDomain() {
  DomainSpec d;
  d.name = "politics";
  {
    ColumnSpec c = TextCol("candidate", {"firstname", "surname"}, "who",
                           {"candidate", "nominee"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("party", {"party"}, "which",
                           {"party", "affiliation"});
    c.verb_templates = {"affiliated with the {v} party",
                        "running for the {v} party"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("votes", 1000, 90000, {"votes", "ballots"});
    c.select_templates = {"how many votes were cast"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("district", {"placename"}, "where",
                           {"district", "constituency"});
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("incumbent", {"yesno"}, "what", {"incumbent"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("year", 1960, 2023, {"year", "election year"});
    c.verb_templates = {"elected in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  return d;
}


DomainSpec BooksDomain() {
  DomainSpec d;
  d.name = "books";
  {
    ColumnSpec c = TextCol("title", {"titleword", "titleword"}, "which",
                           {"title", "book", "novel"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("author", {"author"}, "who",
                           {"author", "writer"});
    c.verb_templates = {"written by {v}", "authored by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("publisher", {"publisher"}, "which",
                           {"publisher"});
    c.verb_templates = {"published by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("genre", {"genre"}, "what", {"genre", "category"});
    c.implicit_templates = {"in the {v} genre"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("year", 1960, 2023, {"year"});
    c.verb_templates = {"published in {v}"};
    c.implicit_templates = {"in {v}", "from {v}"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("pages", 80, 900, {"pages", "length"}));
  return d;
}

DomainSpec AviationDomain() {
  DomainSpec d;
  d.name = "aviation";
  {
    ColumnSpec c = TextCol("airline", {"airline"}, "which",
                           {"airline", "carrier"});
    c.verb_templates = {"operated by {v}", "flown by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("destination", {"airport"}, "where",
                           {"destination", "airport"});
    c.verb_templates = {"flying to {v}", "bound for {v}"};
    c.implicit_templates = {"to {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("departure_date", {"month", "daynum"}, "when",
                           {"departure date", "date"});
    c.select_templates = {"when does the flight leave"};
    c.verb_templates = {"departing on {v}", "leaving on {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("duration", 1, 15, {"duration", "flight time"}));
  d.columns.push_back(RealCol("passengers", 50, 400,
                              {"passengers", "seats"}));
  return d;
}

DomainSpec CompaniesDomain() {
  DomainSpec d;
  d.name = "companies";
  {
    ColumnSpec c = TextCol("company", {"companyword", "companynoun"},
                           "which", {"company", "firm"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("industry", {"industry"}, "what",
                           {"industry", "sector"});
    c.implicit_templates = {"in the {v} sector"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("ceo", {"firstname", "surname"}, "who",
                           {"ceo", "chief"});
    c.verb_templates = {"led by {v}", "run by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("revenue", 1, 900, {"revenue", "sales"});
    c.select_templates = {"how much revenue does the company make"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("employees", 10, 9000,
                              {"employees", "staff", "headcount"}));
  {
    ColumnSpec c = RealCol("founded", 1900, 2020, {"founded", "year"});
    c.verb_templates = {"founded in {v}"};
    c.implicit_templates = {"from {v}"};
    d.columns.push_back(c);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Transfer (OVERNIGHT-style) domains
// ---------------------------------------------------------------------------

DomainSpec BasketballDomain() {
  DomainSpec d;
  d.name = "basketball";
  {
    ColumnSpec c = TextCol("player", {"firstname", "surname"}, "who",
                           {"player"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("team", {"nbateam"}, "which", {"team", "club"});
    c.verb_templates = {"playing for the {v}", "who played for the {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("position", {"position"}, "what",
                           {"position", "role"});
    c.verb_templates = {"playing {v}"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("points", 0, 40, {"points", "score"}));
  d.columns.push_back(RealCol("rebounds", 0, 20, {"rebounds", "boards"}));
  {
    ColumnSpec c = TextCol("years_in_toronto", {"seasonspan"}, "when",
                           {"years in toronto", "toronto years"});
    c.verb_templates = {"on the toronto team in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec CalendarDomain() {
  DomainSpec d;
  d.name = "calendar";
  {
    ColumnSpec c = TextCol("meeting", {"meetingword", "meetingnoun"},
                           "which", {"meeting", "event"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("date", {"month", "daynum"}, "when", {"date"});
    c.verb_templates = {"held on {v}", "scheduled for {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("location", {"placename"}, "where",
                           {"location", "venue"});
    c.verb_templates = {"held in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("attendee", {"firstname", "surname"}, "who",
                           {"attendee", "participant"});
    c.verb_templates = {"attended by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("start_time", {"timeofday"}, "when",
                           {"start time", "time"});
    c.verb_templates = {"starting at {v}"};
    c.implicit_templates = {"at {v}"};
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec HousingDomain() {
  DomainSpec d;
  d.name = "housing";
  {
    ColumnSpec c = TextCol("address", {"daynum", "streetword"}, "which",
                           {"address", "listing"});
    c.implicit_templates = {"at {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("neighborhood", {"neighborhood"}, "where",
                           {"neighborhood", "area"});
    c.verb_templates = {"located in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("price", 200, 990, {"price", "cost", "rent"});
    c.select_templates = {"how much does the unit cost"};
    d.columns.push_back(c);
  }
  d.columns.push_back(RealCol("bedrooms", 1, 6, {"bedrooms", "rooms"}));
  d.columns.push_back(RealCol("size", 30, 400, {"size", "area"}));
  return d;
}

DomainSpec RecipesDomain() {
  DomainSpec d;
  d.name = "recipes";
  {
    ColumnSpec c = TextCol("recipe", {"ingredient", "dishword"}, "which",
                           {"recipe", "dish"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("ingredient", {"ingredient"}, "what",
                           {"ingredient"});
    c.verb_templates = {"containing {v}", "made with {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("cuisine", {"cuisine"}, "which",
                           {"cuisine", "style"});
    c.implicit_templates = {"from the {v} cuisine"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("cooking_time", 10, 120,
                           {"cooking time", "preparation time"});
    c.select_templates = {"how many minutes does it take to cook"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("posting_date", {"month", "daynum", "yearnum"},
                           "when", {"posting date", "date"});
    c.verb_templates = {"posted on {v}"};
    c.implicit_templates = {"on {v}"};
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec RestaurantsDomain() {
  DomainSpec d;
  d.name = "restaurants";
  {
    ColumnSpec c = TextCol("restaurant", {"surname", "restaurantnoun"},
                           "which", {"restaurant", "eatery"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("cuisine", {"cuisine"}, "which",
                           {"cuisine", "food style"});
    c.verb_templates = {"serving {v} food"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("rating", 1, 5, {"rating", "stars"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("neighborhood", {"neighborhood"}, "where",
                           {"neighborhood", "area"});
    c.verb_templates = {"located in {v}"};
    c.implicit_templates = {"in {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("price_range", {"pricerange"}, "what",
                           {"price range", "price"});
    d.columns.push_back(c);
  }
  return d;
}

DomainSpec BuildPatientsDomain() {
  DomainSpec d;
  d.name = "patients";
  {
    ColumnSpec c = TextCol("patient", {"firstname", "surname"}, "who",
                           {"patient", "name"});
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("age", 1, 99, {"age"});
    c.select_templates = {"how old is the patient"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("diagnosis", {"diagnosis"}, "what",
                           {"diagnosis", "condition", "disease"});
    c.verb_templates = {"diagnosed with {v}", "suffering from {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = TextCol("doctor", {"firstname", "surname"}, "who",
                           {"doctor", "physician"});
    c.verb_templates = {"treated by {v}"};
    d.columns.push_back(c);
  }
  {
    ColumnSpec c = RealCol("length_of_stay", 1, 60,
                           {"length of stay", "stay"});
    c.select_templates = {"how many days did the patient stay"};
    d.columns.push_back(c);
  }
  return d;
}

}  // namespace

const std::vector<ValuePool>& ValuePools() {
  static const std::vector<ValuePool>* kPools =
      new std::vector<ValuePool>(BuildPools());
  return *kPools;
}

const std::vector<DomainSpec>& TrainDomains() {
  static const std::vector<DomainSpec>* kDomains = new std::vector<DomainSpec>{
      FilmsDomain(),    GeographyDomain(), RacingDomain(), OlympicsDomain(),
      MusicDomain(),    SpaceDomain(),     PoliticsDomain(), BooksDomain(),
      AviationDomain(), CompaniesDomain(),
  };
  return *kDomains;
}

const std::vector<DomainSpec>& OvernightDomains() {
  static const std::vector<DomainSpec>* kDomains = new std::vector<DomainSpec>{
      BasketballDomain(), CalendarDomain(), HousingDomain(), RecipesDomain(),
      RestaurantsDomain(),
  };
  return *kDomains;
}

const DomainSpec& PatientsDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildPatientsDomain());
  return *kDomain;
}

const ValuePool& GetPool(const std::string& name) {
  for (const auto& pool : ValuePools()) {
    if (pool.name == name) return pool;
  }
  NLIDB_CHECK(false) << "unknown value pool: " << name;
  static const ValuePool* kEmpty = new ValuePool{};
  return *kEmpty;
}

void RegisterDomainClusters(text::EmbeddingProvider& provider) {
  provider.AddClusters(text::DefaultLexicon());
  // Lexicon words keep their linguistic cluster: a pool item like
  // "best director" must not pull "director" toward the award pool.
  std::unordered_set<std::string> lexicon_words;
  for (const auto& cluster : text::DefaultLexicon()) {
    for (const auto& w : cluster.members) lexicon_words.insert(w);
  }
  for (const auto& pool : ValuePools()) {
    // Multi-word items cluster their component words.
    std::vector<std::string> words;
    for (const auto& item : pool.items) {
      size_t start = 0;
      for (size_t i = 0; i <= item.size(); ++i) {
        if (i == item.size() || item[i] == ' ') {
          if (i > start) {
            std::string w = item.substr(start, i - start);
            if (lexicon_words.count(w) == 0) words.push_back(std::move(w));
          }
          start = i + 1;
        }
      }
    }
    provider.AddCluster("pool:" + pool.name, words);
  }
}

}  // namespace data
}  // namespace nlidb
