#include "core/annotator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "text/distance.h"
#include "text/stopwords.h"

namespace nlidb {
namespace core {

namespace {

constexpr float kEditAcceptThreshold = 0.78f;
constexpr float kCosineAcceptThreshold = 0.82f;
constexpr float kClassifierThreshold = 0.5f;
// Slight preference for longer windows among near-equal match scores
// ("grand prix" over "grand").
constexpr float kLengthBonus = 0.02f;

}  // namespace

/// Sec. III: "some mentions ... can be detected exactly as they appear in
/// the questions". Counterfactual values still need the learned detector.
std::vector<ValueDetector::Detection> ExactCellValueMatches(
    const std::vector<std::string>& tokens, const sql::Table& table) {
  std::vector<ValueDetector::Detection> out;
  const int n = static_cast<int>(tokens.size());
  for (int c = 0; c < table.num_columns(); ++c) {
    std::vector<std::string> seen;
    for (int r = 0; r < table.num_rows(); ++r) {
      const std::string display = ToLower(table.Cell(r, c).ToString());
      bool dup = false;
      for (const auto& s : seen) dup = dup || s == display;
      if (dup) continue;
      seen.push_back(display);
      const std::vector<std::string> cell_tokens = text::Tokenize(display);
      const int m = static_cast<int>(cell_tokens.size());
      if (m == 0 || m > 5) continue;
      for (int i = 0; i + m <= n; ++i) {
        bool match = true;
        for (int j = 0; j < m && match; ++j) {
          match = tokens[i + j] == cell_tokens[j];
        }
        if (!match) continue;
        ValueDetector::Detection det;
        det.span = text::Span{i, i + m};
        det.column_scores.push_back({c, 1.0f});
        out.push_back(std::move(det));
      }
    }
  }
  // Keep only maximal spans: an exact match strictly inside a longer one
  // ("17" inside "july 17") is subsumed.
  std::vector<ValueDetector::Detection> maximal;
  for (auto& det : out) {
    bool subsumed = false;
    for (const auto& other : out) {
      if (other.span.length() > det.span.length() &&
          other.span.begin <= det.span.begin &&
          other.span.end >= det.span.end) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal.push_back(std::move(det));
  }
  // Merge detections sharing a span so a value string occurring in two
  // columns yields one detection with both columns admissible.
  std::vector<ValueDetector::Detection> merged;
  for (auto& det : maximal) {
    bool found = false;
    for (auto& m : merged) {
      if (m.span == det.span) {
        bool has = false;
        for (auto& cs : m.column_scores) {
          has = has || cs.first == det.column_scores[0].first;
        }
        if (!has) m.column_scores.push_back(det.column_scores[0]);
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(det));
  }
  return merged;
}

namespace {

bool SpanClaimed(const std::vector<bool>& claimed, const text::Span& span) {
  for (int i = span.begin; i < span.end; ++i) {
    if (claimed[i]) return true;
  }
  return false;
}

void Claim(std::vector<bool>& claimed, const text::Span& span) {
  for (int i = span.begin; i < span.end; ++i) claimed[i] = true;
}

}  // namespace

Annotator::Annotator(const ModelConfig& config,
                     const text::EmbeddingProvider& provider,
                     const ColumnMentionClassifier* classifier,
                     const ValueDetector* value_detector)
    : config_(config),
      provider_(&provider),
      classifier_(classifier),
      value_detector_(value_detector),
      resolver_(config.use_dependency_resolution
                    ? MentionResolver::Strategy::kDependencyTree
                    : MentionResolver::Strategy::kScoreOnly) {}

std::optional<text::Span> Annotator::ContextFreeMatch(
    const std::vector<std::string>& tokens,
    const std::vector<std::string>& phrase_tokens) const {
  std::vector<bool> claimed(tokens.size(), false);
  return ContextFreeMatchUnclaimed(tokens, phrase_tokens, claimed,
                                   ContextFreeMode::kEditAndSemantic);
}

std::vector<ColumnMentionCandidate> Annotator::ContextFreeColumnPass(
    const std::vector<std::string>& tokens, const sql::Schema& schema,
    const NlMetadata* metadata, std::vector<bool>& claimed,
    std::vector<bool>& matched) const {
  std::vector<ColumnMentionCandidate> out;
  // Two rounds: lexical (edit) matches bind first so that a column whose
  // name literally appears cannot lose its tokens to a semantically
  // related sibling (silver vs bronze); cosine matches fill in after.
  const ContextFreeMode modes[] = {ContextFreeMode::kEditOnly,
                                   ContextFreeMode::kEditAndSemantic};
  for (ContextFreeMode mode : modes) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (matched[c]) continue;
      const std::vector<std::string> display = schema.column(c).DisplayTokens();
      std::optional<text::Span> span =
          ContextFreeMatchUnclaimed(tokens, display, claimed, mode);
      if (!span.has_value() && metadata != nullptr &&
          c < static_cast<int>(metadata->column_phrases.size())) {
        for (const auto& phrase : metadata->column_phrases[c]) {
          span = ContextFreeMatchUnclaimed(tokens, SplitWhitespace(phrase),
                                           claimed, mode);
          if (span.has_value()) break;
        }
      }
      if (span.has_value()) {
        Claim(claimed, *span);
        out.push_back({c, *span, 1.0f});
        matched[c] = true;
      }
    }
  }
  return out;
}

std::optional<text::Span> Annotator::ContextFreeMatchUnclaimed(
    const std::vector<std::string>& tokens,
    const std::vector<std::string>& phrase_tokens,
    const std::vector<bool>& claimed, ContextFreeMode mode) const {
  if (phrase_tokens.empty() || tokens.empty()) return std::nullopt;
  const int n = static_cast<int>(tokens.size());
  const int m = static_cast<int>(phrase_tokens.size());
  const std::string phrase = Join(phrase_tokens, " ");

  float best_score = 0.0f;
  text::Span best{};
  for (int len = std::max(1, m - 1); len <= m + 1; ++len) {
    for (int i = 0; i + len <= n; ++i) {
      const text::Span span{i, i + len};
      if (SpanClaimed(claimed, span)) continue;
      std::vector<std::string> window(tokens.begin() + i,
                                      tokens.begin() + i + len);
      // A column mention never consists of function words alone
      // ("how many" must not match a column named "total").
      bool has_content = false;
      for (const auto& w : window) has_content |= !text::IsStopWord(w);
      if (!has_content) continue;
      const float edit = text::EditSimilarity(Join(window, " "), phrase);
      const float cosine = mode == ContextFreeMode::kEditOnly
                               ? 0.0f
                               : text::PhraseCosine(*provider_, window,
                                                    phrase_tokens);
      // Accept on either signal; rank by their max plus a length bonus.
      if (edit >= kEditAcceptThreshold || cosine >= kCosineAcceptThreshold) {
        const float score = std::max(edit, cosine) + kLengthBonus * len;
        if (score > best_score) {
          best_score = score;
          best = span;
        }
      }
    }
  }
  if (best.empty()) return std::nullopt;
  return best;
}

StatusOr<std::vector<ColumnMentionCandidate>> Annotator::DetectColumnMentions(
    const std::vector<std::string>& tokens, const sql::Table& table,
    const NlMetadata* metadata) const {
  const sql::Schema& schema = table.schema();
  std::vector<bool> claimed(tokens.size(), false);
  std::vector<bool> matched(schema.num_columns(), false);
  std::vector<ColumnMentionCandidate> out =
      ContextFreeColumnPass(tokens, schema, metadata, claimed, matched);
  StatusOr<std::vector<ColumnMentionCandidate>> learned =
      ClassifierColumnPass(tokens, schema, claimed, matched, nullptr);
  if (!learned.ok()) return learned.status();
  for (auto& cand : *learned) {
    out.push_back(std::move(cand));
  }
  return out;
}

StatusOr<std::vector<ColumnMentionCandidate>> Annotator::ClassifierColumnPass(
    const std::vector<std::string>& tokens, const sql::Schema& schema,
    std::vector<bool>& claimed, const std::vector<bool>& matched,
    const CancelContext* ctx,
    const std::vector<int>* column_shortlist) const {
  std::vector<ColumnMentionCandidate> out;
  if (classifier_ == nullptr) return out;
  // Shortlist gating: a column off the shortlist is skipped exactly as
  // if the classifier had rejected it — it contributes nothing to the
  // annotation (only accepted columns do, below), so the result matches
  // a full scan whenever the shortlist covers every would-be accept.
  std::vector<bool> in_shortlist;
  if (column_shortlist != nullptr) {
    in_shortlist.assign(static_cast<size_t>(schema.num_columns()), false);
    for (int c : *column_shortlist) {
      if (c >= 0 && c < schema.num_columns()) in_shortlist[c] = true;
    }
  }
  static metrics::Counter& columns_scored =
      metrics::MetricsRegistry::Global().GetCounter(
          "annotator.classifier_columns_scored");
  static metrics::Counter& influence_fanouts =
      metrics::MetricsRegistry::Global().GetCounter(
          "annotator.influence_fanouts");
  trace::TraceSpan span("annotator.classifier");
  AdversarialLocator locator(config_);

  // Phase 1 (batched): score every unmatched column in one classifier
  // graph. Bitwise identical per column to Predict, so the acceptance
  // decisions are exactly those of the sequential pass.
  std::vector<int> pending;
  std::vector<std::vector<std::string>> displays;
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (matched[c]) continue;
    if (!in_shortlist.empty() && !in_shortlist[c]) continue;
    pending.push_back(c);
    displays.push_back(schema.column(c).DisplayTokens());
  }
  if (pending.empty()) return out;
  columns_scored.Increment(static_cast<int64_t>(pending.size()));
  NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "annotator.classifier_batch"));
  StatusOr<std::vector<float>> probs_or =
      classifier_->PredictBatch(tokens, displays);
  if (!probs_or.ok()) return probs_or.status();
  const std::vector<float>& probs = *probs_or;

  // Phase 2 (parallel): influence profiles for the accepted columns.
  // ComputeInfluence depends only on (question, column) — not on the
  // claimed mask — so the per-column passes fan out across the thread
  // pool into index-addressed slots. The seed code also ran a second full
  // Forward here (inside ComputeInfluence) for accepted columns; that is
  // now the only forward they need, since scoring was batched above.
  std::vector<int> accepted;
  for (size_t j = 0; j < pending.size(); ++j) {
    if (probs[j] >= kClassifierThreshold) accepted.push_back(static_cast<int>(j));
  }
  influence_fanouts.Increment(static_cast<int64_t>(accepted.size()));
  std::vector<InfluenceProfile> profiles(accepted.size());
  std::vector<Status> chunk_status(accepted.size());
  const CancelContext pool_ctx = ctx != nullptr ? *ctx : CancelContext{};
  NLIDB_RETURN_IF_ERROR(ThreadPool::Global().ParallelFor(
      0, static_cast<int>(accepted.size()),
      [&](int jb, int je) {
        // Worker-side span; parented under "annotator.classifier" via
        // the trace-parent propagation in ThreadPool::RunJob.
        trace::TraceSpan chunk("annotator.influence");
        chunk.Annotate("columns", static_cast<int64_t>(je - jb));
        for (int j = jb; j < je; ++j) {
          StatusOr<InfluenceProfile> profile = locator.ComputeInfluence(
              *classifier_, tokens, displays[accepted[j]]);
          if (profile.ok()) {
            profiles[j] = std::move(profile).value();
          } else {
            chunk_status[j] = profile.status();
          }
        }
      },
      pool_ctx));
  for (const Status& s : chunk_status) {
    NLIDB_RETURN_IF_ERROR(s);
  }

  // Phase 3 (sequential, original column order): masking, span location,
  // and claiming. The claimed mask evolves between columns exactly as in
  // the sequential pass, so results are unchanged.
  for (size_t j = 0; j < accepted.size(); ++j) {
    const int c = pending[accepted[j]];
    const float p = probs[accepted[j]];
    InfluenceProfile& profile = profiles[j];
    // Tokens already claimed by higher-confidence evidence (exact values,
    // context-free column matches, learned values) and stop words are
    // masked out of the influence profile — a column mention is never
    // made of function words alone, and a span landing on a value means
    // the column is mentioned implicitly through its value (Fig. 1d).
    float masked_max = 0.0f;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (claimed[i] || text::IsStopWord(tokens[i])) profile.total[i] = 0.0f;
      masked_max = std::max(masked_max, profile.total[i]);
    }
    text::Span span{};
    if (masked_max > 0.0f) {
      span = locator.LocateSpan(profile);
      // Trim zeroed borders introduced by masking.
      while (span.begin < span.end && profile.total[span.begin] == 0.0f) {
        ++span.begin;
      }
      while (span.end > span.begin && profile.total[span.end - 1] == 0.0f) {
        --span.end;
      }
    }
    if (!span.empty()) Claim(claimed, span);
    out.push_back({c, span, p});
  }
  return out;
}

StatusOr<Annotation> Annotator::Annotate(
    const std::vector<std::string>& tokens, const sql::Table& table,
    const std::vector<sql::ColumnStatistics>& stats,
    const NlMetadata* metadata, const CancelContext* ctx,
    AnnotateDebug* debug, const std::vector<int>* column_shortlist) const {
  if (tokens.empty()) {
    return Status::InvalidArgument("empty question");
  }
  if (static_cast<int>(stats.size()) != table.num_columns()) {
    return Status::InvalidArgument(
        "column statistics do not match the table schema (" +
        std::to_string(stats.size()) + " stats for " +
        std::to_string(table.num_columns()) + " columns)");
  }
  static metrics::Counter& exact_matches =
      metrics::MetricsRegistry::Global().GetCounter(
          "annotator.exact_value_matches");
  static metrics::Counter& context_free_matches =
      metrics::MetricsRegistry::Global().GetCounter(
          "annotator.context_free_matches");
  static metrics::Counter& learned_detections =
      metrics::MetricsRegistry::Global().GetCounter(
          "annotator.learned_value_detections");
  trace::TraceSpan span("annotator.annotate");

  // Confidence-ordered token claiming:
  //  1. exact table-cell value matches,
  //  2. context-free column matches,
  //  3. learned value detections,
  //  4. adversarial column spans (masked by everything above).
  const sql::Schema& schema = table.schema();

  // Stage 1: exact table-cell value matches claim their tokens.
  std::vector<ValueDetector::Detection> values;
  std::vector<bool> claimed(tokens.size(), false);
  {
    trace::TraceSpan stage("annotator.exact_values");
    values = ExactCellValueMatches(tokens, table);
    for (const auto& det : values) Claim(claimed, det.span);
    exact_matches.Increment(static_cast<int64_t>(values.size()));
  }

  NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "annotator.exact_values"));

  // Stage 2: context-free column matches on unclaimed tokens.
  std::vector<bool> matched(schema.num_columns(), false);
  std::vector<ColumnMentionCandidate> columns;
  {
    trace::TraceSpan stage("annotator.context_free");
    columns = ContextFreeColumnPass(tokens, schema, metadata, claimed,
                                    matched);
    context_free_matches.Increment(static_cast<int64_t>(columns.size()));
  }
  NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "annotator.context_free"));

  // Stage 3: learned value detections, longest span first so a full
  // multi-word value is not blocked by its own sub-span.
  if (value_detector_ != nullptr) {
    trace::TraceSpan stage("annotator.values");
    StatusOr<std::vector<ValueDetector::Detection>> learned_or =
        value_detector_->Detect(tokens, stats, ctx);
    if (!learned_or.ok()) return learned_or.status();
    std::vector<ValueDetector::Detection> learned =
        std::move(learned_or).value();
    learned_detections.Increment(static_cast<int64_t>(learned.size()));
    std::sort(learned.begin(), learned.end(),
              [](const ValueDetector::Detection& a,
                 const ValueDetector::Detection& b) {
                if (a.span.length() != b.span.length()) {
                  return a.span.length() > b.span.length();
                }
                const float sa =
                    a.column_scores.empty() ? 0 : a.column_scores[0].second;
                const float sb =
                    b.column_scores.empty() ? 0 : b.column_scores[0].second;
                return sa > sb;
              });
    for (auto& det : learned) {
      if (SpanClaimed(claimed, det.span)) continue;
      Claim(claimed, det.span);
      values.push_back(std::move(det));
    }
  }

  // Stage 4: classifier + adversarial locator for unmatched columns.
  StatusOr<std::vector<ColumnMentionCandidate>> learned_columns =
      ClassifierColumnPass(tokens, schema, claimed, matched, ctx,
                           column_shortlist);
  if (!learned_columns.ok()) return learned_columns.status();
  for (auto& cand : *learned_columns) {
    columns.push_back(std::move(cand));
  }
  NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "annotator.classifier"));
  trace::TraceSpan resolve("annotator.resolve");
  bool linear_fallback = false;
  Annotation annotation =
      resolver_.Resolve(tokens, columns, values, &linear_fallback);
  if (debug != nullptr) debug->linear_resolution_fallback = linear_fallback;
  return annotation;
}

}  // namespace core
}  // namespace nlidb
