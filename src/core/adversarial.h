#ifndef NLIDB_CORE_ADVERSARIAL_H_
#define NLIDB_CORE_ADVERSARIAL_H_

#include <string>
#include <vector>

#include "core/column_mention_classifier.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {

/// Per-token influence levels (Sec. IV-C):
///   I(w) = alpha * ||dL/dE_word(w)||_p + beta * ||dL/dE_char(w)||_p
struct InfluenceProfile {
  std::vector<float> word_level;  // ||dL/dE_word(w_i)||_p
  std::vector<float> char_level;  // ||dL/dE_char(w_i)||_p
  std::vector<float> total;       // alpha*word + beta*char
};

/// The adversarial text method: locates the term of a column mention as
/// the contiguous span most influential to the classifier's decision,
/// measured by fast-gradient-method loss gradients w.r.t. the word- and
/// character-level representations (Goodfellow et al. [9], Miyato et
/// al. [25]).
class AdversarialLocator {
 public:
  explicit AdversarialLocator(const ModelConfig& config) : config_(config) {}

  /// Computes the influence of every question token on the prediction
  /// that `column` is mentioned in `question`. Runs one forward/backward
  /// pass of the classifier with target label 1. Propagates the
  /// classifier's InvalidArgument on empty inputs.
  StatusOr<InfluenceProfile> ComputeInfluence(
      const ColumnMentionClassifier& classifier,
      const std::vector<std::string>& question,
      const std::vector<std::string>& column) const;

  /// Picks the mention span from an influence profile: seeded at the
  /// influence peak and greedily extended while neighbors stay above
  /// half the peak, capped at `config.max_mention_length` (the paper's
  /// maximum mention length constraint).
  text::Span LocateSpan(const InfluenceProfile& profile) const;

  /// Convenience: ComputeInfluence + LocateSpan.
  StatusOr<text::Span> LocateMention(
      const ColumnMentionClassifier& classifier,
      const std::vector<std::string>& question,
      const std::vector<std::string>& column) const;

 private:
  ModelConfig config_;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_ADVERSARIAL_H_
