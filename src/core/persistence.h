#ifndef NLIDB_CORE_PERSISTENCE_H_
#define NLIDB_CORE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "core/pipeline.h"

namespace nlidb {
namespace core {

/// Saves a trained pipeline into `dir` (created if absent) as a new
/// snapshot directory `snapshot-NNNNNN/` holding one checkpoint per
/// learned component plus the word vocabularies, then atomically
/// rewrites the `MANIFEST` file (newest snapshot first). Every file is
/// written temp-file → fsync → rename, so a crash at any point leaves
/// the previous snapshot loadable; the two most recent snapshots are
/// kept and older ones garbage-collected.
Status SavePipeline(const NlidbPipeline& pipeline, const std::string& dir);

/// Restores a pipeline previously saved with SavePipeline. Snapshots
/// listed in MANIFEST are validated (CRC + structural parse) newest
/// first and the first complete one is loaded — a partial or corrupt
/// save falls back to the previous snapshot (counted in
/// `persistence.fallback_loads`). Directories without a MANIFEST are
/// read in the legacy flat layout. The receiving pipeline must have
/// been constructed with the same ModelConfig and an
/// equivalently-configured EmbeddingProvider; mismatched architectures
/// fail with FailedPrecondition (no partial loads).
Status LoadPipeline(NlidbPipeline& pipeline, const std::string& dir);

/// Writes / reads a vocabulary (specials omitted). The v2 format is one
/// header line `NLIDB-VOCAB v2 crc=<hex> count=<n>` followed by one
/// token per line; plain token-list files (v1) still load.
Status SaveVocab(const text::Vocab& vocab, const std::string& path);
StatusOr<std::vector<std::string>> LoadVocabTokens(const std::string& path);

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_PERSISTENCE_H_
