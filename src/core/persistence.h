#ifndef NLIDB_CORE_PERSISTENCE_H_
#define NLIDB_CORE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "core/pipeline.h"

namespace nlidb {
namespace core {

/// Saves a trained pipeline into `dir` (created if absent): one
/// checkpoint per learned component plus the word vocabularies the
/// classifier and translator were trained with.
Status SavePipeline(const NlidbPipeline& pipeline, const std::string& dir);

/// Restores a pipeline previously saved with SavePipeline. The receiving
/// pipeline must have been constructed with the same ModelConfig and an
/// equivalently-configured EmbeddingProvider; mismatched architectures
/// fail with FailedPrecondition (no partial loads).
Status LoadPipeline(NlidbPipeline& pipeline, const std::string& dir);

/// Writes / reads a vocabulary as one token per line (specials omitted).
Status SaveVocab(const text::Vocab& vocab, const std::string& path);
StatusOr<std::vector<std::string>> LoadVocabTokens(const std::string& path);

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_PERSISTENCE_H_
