#ifndef NLIDB_CORE_TRAINER_H_
#define NLIDB_CORE_TRAINER_H_

#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/annotation.h"
#include "core/column_mention_classifier.h"
#include "core/seq2seq.h"
#include "core/value_detector.h"
#include "data/example.h"

namespace nlidb {
namespace core {

/// Builds the gold annotation of a generated example from its recorded
/// mention spans. Pairs are ordered by first appearance, fixing the
/// c_i/v_i numbering (the same ordering the inference-time resolver
/// produces).
Annotation GoldAnnotation(const data::Example& example);

/// Statistics cache keyed by table identity, shared across training and
/// evaluation passes. Safe for concurrent `For` calls (serving workers
/// share one pipeline): lookups and inserts run under a mutex, and the
/// returned reference stays valid across later insertions because
/// unordered_map never moves its nodes.
class TableStatsCache {
 public:
  explicit TableStatsCache(const text::EmbeddingProvider& provider)
      : provider_(&provider) {}

  const std::vector<sql::ColumnStatistics>& For(const sql::Table& table);

 private:
  const text::EmbeddingProvider* const provider_;
  Mutex mu_{"core.table_stats"};
  std::unordered_map<const sql::Table*, std::vector<sql::ColumnStatistics>>
      cache_ NLIDB_GUARDED_BY(mu_);
};

/// Per-stage training results (mean loss of the final epoch).
struct TrainReport {
  float classifier_loss = 0.0f;
  float value_loss = 0.0f;
  float seq2seq_loss = 0.0f;
  int classifier_pairs = 0;
  int value_pairs = 0;
  int seq2seq_pairs = 0;
};

/// Trains the column-mention classifier on (question, column) pairs
/// derived from the dataset: query-referenced columns are positive,
/// the remaining schema columns negative. Returns final-epoch mean loss.
float TrainColumnMentionClassifier(ColumnMentionClassifier& classifier,
                                   const data::Dataset& dataset,
                                   const ModelConfig& config,
                                   int* num_pairs = nullptr);

/// Trains the value detector on (span, column-stats) pairs: gold value
/// spans against their column (positive, oversampled) and against other
/// columns / random non-value spans (negative).
float TrainValueDetector(ValueDetector& detector, const data::Dataset& dataset,
                         TableStatsCache& stats_cache,
                         const ModelConfig& config, int* num_pairs = nullptr);

/// Trains a sequence translator (GRU seq2seq or transformer) on
/// (q^a, s^a) pairs built from gold annotations. `options` selects the
/// representation (appending / header encoding) so ablations reuse this
/// entry point.
float TrainSeq2Seq(TranslatorInterface& translator,
                   const data::Dataset& dataset,
                   const AnnotationOptions& options, const ModelConfig& config,
                   int* num_pairs = nullptr);

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_TRAINER_H_
