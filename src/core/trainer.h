#ifndef NLIDB_CORE_TRAINER_H_
#define NLIDB_CORE_TRAINER_H_

#include <vector>

#include "core/annotation.h"
#include "core/column_mention_classifier.h"
#include "core/seq2seq.h"
#include "core/value_detector.h"
#include "data/example.h"
#include "schema/registry.h"

namespace nlidb {
namespace core {

/// Builds the gold annotation of a generated example from its recorded
/// mention spans. Pairs are ordered by first appearance, fixing the
/// c_i/v_i numbering (the same ordering the inference-time resolver
/// produces).
Annotation GoldAnnotation(const data::Example& example);

/// Concatenates a base corpus with an augmentation corpus (adversarial
/// mutants, paraphrase variants) into one training dataset. Tables are
/// merged with pointer-identity dedup — augmented examples generated
/// from base tables do not duplicate them.
data::Dataset AugmentDataset(const data::Dataset& base,
                             const data::Dataset& augmentation);

/// Per-stage training results (mean loss of the final epoch).
struct TrainReport {
  float classifier_loss = 0.0f;
  float value_loss = 0.0f;
  float seq2seq_loss = 0.0f;
  int classifier_pairs = 0;
  int value_pairs = 0;
  int seq2seq_pairs = 0;
};

/// Trains the column-mention classifier on (question, column) pairs
/// derived from the dataset: query-referenced columns are positive,
/// the remaining schema columns negative. Returns final-epoch mean loss.
float TrainColumnMentionClassifier(ColumnMentionClassifier& classifier,
                                   const data::Dataset& dataset,
                                   const ModelConfig& config,
                                   int* num_pairs = nullptr);

/// Trains the value detector on (span, column-stats) pairs: gold value
/// spans against their column (positive, oversampled) and against other
/// columns / random non-value spans (negative). Column statistics come
/// from `registry`'s content-keyed store (the same const lookup the
/// inference path uses), so training a second model over the same corpus
/// reuses the computed statistics instead of recomputing them.
float TrainValueDetector(ValueDetector& detector, const data::Dataset& dataset,
                         const schema::SchemaRegistry& registry,
                         const ModelConfig& config, int* num_pairs = nullptr);

/// Trains a sequence translator (GRU seq2seq or transformer) on
/// (q^a, s^a) pairs built from gold annotations. `options` selects the
/// representation (appending / header encoding) so ablations reuse this
/// entry point.
float TrainSeq2Seq(TranslatorInterface& translator,
                   const data::Dataset& dataset,
                   const AnnotationOptions& options, const ModelConfig& config,
                   int* num_pairs = nullptr);

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_TRAINER_H_
