#ifndef NLIDB_CORE_SEQ2SEQ_FAST_H_
#define NLIDB_CORE_SEQ2SEQ_FAST_H_

// Resumable per-query decode state for the graph-free fast path
// (DESIGN.md §12/§13). `Seq2SeqTranslator::FastBeamSearch` used to be one
// monolithic loop; it is now a thin driver over this class so a serving
// scheduler can interleave the decode steps of many concurrent queries:
//
//   FastDecodeState state(translator, source, beam_width, mask, ws);
//   NLIDB_RETURN_IF_ERROR(state.Admit());
//   state.BuildEncoderCache();
//   while (true) {
//     NLIDB_RETURN_IF_ERROR(state.BeginStep(ctx));
//     if (state.done()) break;
//     state.StageFrontier(x, d_gather);            // rows into shared bufs
//     FastDecodeState::ComputeGates(translator, x, d_gather, rows, gi, gh);
//     state.FinishStep(gi, gh, d_gather);
//   }
//   auto result = state.TakeResult();
//
// The split points are exactly the two batched GRU-gate GEMMs: a batcher
// concatenates the live frontiers of N queries into one [ΣB, 3H]
// ComputeGates call and hands each state back its own rows. Because
// GemmAccumulateRaw's per-output accumulation order is independent of the
// row count (tensor/tensor.h contract) and every other computation in
// FinishStep is row-local, a query decoded through a shared batch is
// bitwise identical to the same query decoded alone — the equivalence
// serving_equivalence_test enforces.
//
// Threading contract: a FastDecodeState is not thread-safe. It may be
// driven by different threads over its lifetime (a batch leader advancing
// other requests' states) provided calls are externally serialized with
// happens-before edges between them (the batcher's mutex). All float
// buffers live in the `ws` arena passed at construction, which must
// outlive the state and follow the same single-driver discipline.

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/workspace.h"
#include "core/decode_grammar.h"
#include "core/seq2seq.h"

namespace nlidb {
namespace core {

class FastDecodeState {
 public:
  /// A finished search: winning tokens + length-normalized log-prob.
  struct Result {
    std::vector<std::string> tokens;
    float score = 0.0f;
  };

  /// `source` and `ws` must outlive the state; `source` is the q^a token
  /// sequence fed to the decoder. `use_grammar_mask` requests the
  /// grammar-constrained mode (downgraded internally when the vocabulary
  /// cannot support it, mirroring FastBeamSearch).
  FastDecodeState(const Seq2SeqTranslator& translator,
                  const std::vector<std::string>& source, int beam_width,
                  bool use_grammar_mask, Workspace& ws);
  FastDecodeState(const FastDecodeState&) = delete;
  FastDecodeState& operator=(const FastDecodeState&) = delete;

  /// Whether `Decode` under `mode` would request the grammar mask — the
  /// dispatch `Seq2SeqTranslator::Search` applies, exposed for external
  /// drivers (the serving batcher) that replicate it. False for the
  /// reference modes (they are not drivable through this class).
  static bool WantsMask(const Seq2SeqTranslator& translator, DecodeMode mode);

  /// Entry validation, called once before anything else: empty-source
  /// check plus the injectable `seq2seq/beam_exhausted` failpoint
  /// (beam_width > 1 only), in the same order as the monolithic search.
  Status Admit();

  /// Runs the encoder and builds the per-query cache (embedding gathers,
  /// biGRU states, projected attention keys, init state, grammar tables)
  /// plus the per-step scratch buffers. Emits the "seq2seq.encode" trace
  /// span on the calling thread. Call once, after a successful Admit().
  void BuildEncoderCache();

  /// Starts one decode step: deadline/cancel poll, live-frontier scan,
  /// output-safe early termination, step counters. After an Ok return
  /// either done() is true (nothing further to run) or frontier_rows()
  /// rows are ready to stage. A non-Ok status (deadline) abandons the
  /// search, exactly like the monolithic loop.
  Status BeginStep(const CancelContext* ctx);

  /// True once the search has terminated (all beams finished, early
  /// termination, exhaustion, or the step limit).
  bool done() const { return done_; }

  /// Live frontier size B of the step opened by the last BeginStep().
  int frontier_rows() const { return frontier_rows_; }

  /// Decoder GRU input width (word_dim + 2h): the row stride of `x`.
  int x_width() const { return xin_; }
  /// Decoder hidden width H (2h): the row stride of `d_gather`.
  int h_width() const { return h2_; }

  /// Writes the frontier's GRU inputs into caller-provided buffers:
  /// `x` receives [B, x_width()] rows of [emb(prev_token); beta_prev],
  /// `d_gather` the matching [B, h_width()] previous decoder states.
  void StageFrontier(float* x, float* d_gather) const;

  /// The two batched GRU-gate products shared across queries:
  /// gi = x · W_ih + b_ih and gh = d_gather · W_hh + b_hh over `rows`
  /// frontier rows ([rows, 3H] outputs, zero-filled here). Row r of the
  /// output depends only on row r of the input, bitwise, so frontiers of
  /// different queries can be concatenated freely.
  static void ComputeGates(const Seq2SeqTranslator& translator, const float* x,
                           const float* d_gather, int rows, float* gi,
                           float* gh);

  /// Completes the step from this query's gate rows: GRU elementwise,
  /// attention, output scores, candidate expansion and beam pruning.
  /// `gi`/`gh`/`d_gather` point at this state's frontier_rows() rows.
  void FinishStep(const float* gi, const float* gh, const float* d_gather);

  /// Final hypothesis selection (length-normalized), or the
  /// beam-exhaustion error. Call once, after done() turns true.
  StatusOr<Result> TakeResult();

 private:
  struct FastBeam {
    int prev_token = 0;
    int grammar_state = DecodeGrammar::kStart;
    int slot = 0;  // row in d_prev/beta_prev
    std::vector<std::string> tokens;
    float log_prob = 0.0f;
    bool finished = false;
  };
  struct Candidate {
    int parent_slot = 0;
    FastBeam beam;
  };

  const Seq2SeqTranslator& t_;
  const std::vector<std::string>& source_;
  const int beam_width_;
  Workspace& ws_;

  // Dimensions (fixed by the model config).
  const int d_;     // word_dim
  const int h_;     // seq2seq_hidden
  const int att_;   // attention width (= h_)
  const int h2_;    // decoder hidden H = 2h
  const int h4_;    // [d_i ; beta_i] width
  const int xin_;   // decoder GRU input width d + 2h
  const int vocab_size_;
  const int n_;     // source length

  // The grammar is built per query (vocabulary classification is O(V) on
  // token strings); an unusable grammar downgrades to unmasked decoding.
  DecodeGrammar grammar_;
  const bool masked_;
  int score_width_ = 0;
  int gemm_width_ = 0;

  // Per-query cached encoder state: everything a decode step would
  // recompute from the encoder outputs, plus the grammar-mask tables.
  struct EncoderCache {
    std::vector<int> source_ids;  // vocab ids of the source tokens
    float* enc_states = nullptr;  // [n, 2h] bidirectional states
    float* mem_proj = nullptr;    // [n, att] projected attention keys
    float* d0 = nullptr;          // [2h] initial decoder state

    // Grammar-mask extras (empty when masking is off).
    std::vector<int> domain;         // sorted vocab ids the mask can emit
    std::vector<int> slot_of_src;    // domain slot per source position
    std::vector<uint8_t> in_source;  // by vocab id
    float* u_sub = nullptr;          // [4h, |domain|] gathered out columns
    float* bias_sub = nullptr;       // [|domain|] gathered output bias
  };
  EncoderCache cache_;

  // Beam-state ping-pong buffers and per-step scratch, allocated once in
  // BuildEncoderCache (all from ws_, zero-initialized by the arena).
  float* d_prev_ = nullptr;
  float* beta_prev_ = nullptr;
  float* d_swap_ = nullptr;
  float* beta_swap_ = nullptr;
  float* d_next_ = nullptr;
  float* query_ = nullptr;
  float* tanh_keys_ = nullptr;
  float* energies_ = nullptr;
  float* weights_all_ = nullptr;
  float* beta_next_ = nullptr;
  float* cat_ = nullptr;
  float* logits_ = nullptr;
  float* mass_ = nullptr;
  float* scores_ = nullptr;

  std::vector<FastBeam> beams_;
  std::vector<FastBeam> finished_;
  std::vector<int> live_;
  int frontier_rows_ = 0;
  int step_ = 0;
  bool done_ = false;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_SEQ2SEQ_FAST_H_
