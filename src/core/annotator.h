#ifndef NLIDB_CORE_ANNOTATOR_H_
#define NLIDB_CORE_ANNOTATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/adversarial.h"
#include "core/column_mention_classifier.h"
#include "core/mention_resolver.h"
#include "core/value_detector.h"
#include "sql/statistics.h"

namespace nlidb {
namespace core {

/// Optional database-specific natural-language metadata (Sec. II): for
/// each schema column, extra phrases P_c that mention it. Purely provides
/// extra context-free match candidates; "optional and orthogonal to the
/// rest of the model". Left empty for WikiSQL-style evaluation (the paper
/// disables it there for fair comparison).
struct NlMetadata {
  std::vector<std::vector<std::string>> column_phrases;  // per column
};

/// Context-free value detection: table cells whose display text occurs
/// verbatim (token-wise) in the question, reported as detections with
/// score 1.0. Sub-spans of longer matches are subsumed; a string present
/// in several columns yields one detection listing all of them.
std::vector<ValueDetector::Detection> ExactCellValueMatches(
    const std::vector<std::string>& tokens, const sql::Table& table);

/// Step 1 of the framework: q -> q^a.
///
/// Column mentions are found by (a) context-free matching — sliding-window
/// edit similarity and embedding cosine against the column's display name
/// and metadata phrases — and (b) for context-dependent cases, the
/// mention classifier plus the adversarial locator (Sec. VII-A1 describes
/// exactly this split). Value mentions come from the value detector;
/// pairing is done by the dependency-tree resolver.
class Annotator {
 public:
  Annotator(const ModelConfig& config,
            const text::EmbeddingProvider& provider,
            const ColumnMentionClassifier* classifier,
            const ValueDetector* value_detector);

  /// Out-of-band facts about how an annotation was produced; degraded
  /// paths are also visible in metrics, but callers assembling a
  /// QueryResult need them per request.
  struct AnnotateDebug {
    bool linear_resolution_fallback = false;
  };

  /// Annotates a tokenized question against a table. `stats` must be the
  /// statistics of the same table's columns; an empty question or a
  /// stats/schema size mismatch is an InvalidArgument error rather than
  /// a silently-empty annotation. `ctx` (optional) is polled at stage
  /// boundaries and inside the value-detector scan and classifier
  /// fan-out; expiry surfaces as DeadlineExceeded.
  ///
  /// `column_shortlist` (optional, ascending column indices) restricts
  /// the classifier pass to those columns; excluded columns behave
  /// exactly as classifier rejections. The result is identical to a
  /// full scan whenever the shortlist covers every column the
  /// classifier would accept — the schema registry's contract
  /// (schema/registry.h), asserted by the equality tests. Context-free
  /// matching and value detection are never restricted: they are the
  /// higher-confidence evidence tiers.
  StatusOr<Annotation> Annotate(
      const std::vector<std::string>& tokens, const sql::Table& table,
      const std::vector<sql::ColumnStatistics>& stats,
      const NlMetadata* metadata = nullptr,
      const CancelContext* ctx = nullptr,
      AnnotateDebug* debug = nullptr,
      const std::vector<int>* column_shortlist = nullptr) const;

  /// Best context-free match of `phrase_tokens` inside `tokens`:
  /// the window with the highest blended edit/semantic similarity, if it
  /// clears the acceptance threshold.
  std::optional<text::Span> ContextFreeMatch(
      const std::vector<std::string>& tokens,
      const std::vector<std::string>& phrase_tokens) const;

  /// Detects column mention candidates only (exposed for evaluation).
  StatusOr<std::vector<ColumnMentionCandidate>> DetectColumnMentions(
      const std::vector<std::string>& tokens, const sql::Table& table,
      const NlMetadata* metadata = nullptr) const;

 private:
  enum class ContextFreeMode { kEditOnly, kEditAndSemantic };

  /// ContextFreeMatch restricted to windows whose tokens are unclaimed.
  std::optional<text::Span> ContextFreeMatchUnclaimed(
      const std::vector<std::string>& tokens,
      const std::vector<std::string>& phrase_tokens,
      const std::vector<bool>& claimed, ContextFreeMode mode) const;

  /// Context-free column matching: lexical round then semantic round.
  /// Claims matched tokens and flags matched columns.
  std::vector<ColumnMentionCandidate> ContextFreeColumnPass(
      const std::vector<std::string>& tokens, const sql::Schema& schema,
      const NlMetadata* metadata, std::vector<bool>& claimed,
      std::vector<bool>& matched) const;

  /// Classifier + adversarial-locator pass over unmatched columns
  /// (intersected with `column_shortlist` when non-null).
  StatusOr<std::vector<ColumnMentionCandidate>> ClassifierColumnPass(
      const std::vector<std::string>& tokens, const sql::Schema& schema,
      std::vector<bool>& claimed, const std::vector<bool>& matched,
      const CancelContext* ctx,
      const std::vector<int>* column_shortlist = nullptr) const;

  ModelConfig config_;
  const text::EmbeddingProvider* provider_;
  const ColumnMentionClassifier* classifier_;
  const ValueDetector* value_detector_;
  MentionResolver resolver_;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_ANNOTATOR_H_
