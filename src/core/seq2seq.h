#ifndef NLIDB_CORE_SEQ2SEQ_H_
#define NLIDB_CORE_SEQ2SEQ_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/config.h"
#include "core/translator_interface.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/rnn.h"
#include "text/vocab.h"

namespace nlidb {
namespace core {

/// The sequence-to-sequence translator of Sec. V: annotated question q^a
/// to annotated SQL s^a.
///
///  * Encoder: stacked bidirectional GRU with per-layer input affines.
///  * Decoder: attentive GRU (Bahdanau attention) whose initial state is
///    tanh(W1 [fw_N; bw_1]).
///  * Copy mechanism: output scores are exp(U [d_i, beta_i]) + M_i with
///    M_i[token] accumulating exp(e_ij) over source positions j holding
///    that token — the paper's additive variant, not softmax-over-vocab.
///  * Tied embeddings between encoder input, decoder input and output.
///  * Annotation symbols (c_i / v_i / g_i) embed as the concatenation of
///    a type vector and an index vector (Sec. VII-A2).
///
/// Inference is beam search (width `config.beam_width`); an emitted <unk>
/// is replaced by the source token under the attention peak (pointer-style
/// fallback for out-of-vocabulary literals).
class Seq2SeqTranslator : public TranslatorInterface {
 public:
  explicit Seq2SeqTranslator(const ModelConfig& config);

  /// Adds tokens of a training corpus to the shared vocabulary.
  /// Annotation symbols receive structured type+index embeddings.
  void AddVocabulary(const std::vector<std::string>& tokens) override;

  /// Freezes the vocabulary (unseen tokens become <unk> afterwards).
  void FreezeVocabulary() { vocab_.Freeze(); }

  /// Teacher-forced loss (mean over target steps) for one pair.
  Var Loss(const std::vector<std::string>& source,
           const std::vector<std::string>& target) const override;

  /// Result of `Decode`: the output tokens plus whether the degraded
  /// greedy path produced them (beam search exhausted every hypothesis).
  struct Decoded {
    std::vector<std::string> tokens;
    bool used_greedy_fallback = false;
  };

  /// Deadline-aware decoding, the query-path entry point. Beam search
  /// (width `config.beam_width`) with graceful degradation: if the beam
  /// exhausts without any finished hypothesis, retries with greedy
  /// decode (recorded in `Decoded::used_greedy_fallback` and the
  /// `seq2seq.greedy_fallbacks` counter) instead of failing the query.
  /// `ctx` (optional) is polled every decode step; expiry surfaces as
  /// DeadlineExceeded. Empty source is InvalidArgument.
  StatusOr<Decoded> Decode(const std::vector<std::string>& source,
                           const CancelContext* ctx = nullptr) const;

  /// Beam-search translation of a source sequence. Thin wrapper over
  /// `Decode` satisfying TranslatorInterface; decode errors surface as
  /// an empty token sequence here.
  std::vector<std::string> Translate(
      const std::vector<std::string>& source) const override;

  /// Greedy decode (beam width 1 shortcut, used in tests).
  std::vector<std::string> TranslateGreedy(
      const std::vector<std::string>& source) const;

  void CollectParameters(std::vector<Var>* out) const override;

  const text::Vocab& vocab() const { return vocab_; }
  const ModelConfig& config() const { return config_; }

 private:
  struct EncoderOutput {
    Var states;       // [n, 2h]
    Var memory_proj;  // attention projection of states
    Var d0;           // initial decoder state [1, 2h]
    std::vector<int> source_ids;
  };
  EncoderOutput Encode(const std::vector<std::string>& source) const;

  struct StepOutput {
    Var state;     // next decoder state
    Var scores;    // [1, V] positive scores (copy-augmented)
    Var energies;  // [1, n] raw attention energies
    Var weights;   // [1, n] attention weights
  };
  StepOutput DecodeStep(const EncoderOutput& enc, const Var& prev_state,
                        int prev_token) const;

  StatusOr<std::vector<std::string>> BeamSearch(
      const std::vector<std::string>& source, int beam_width,
      const CancelContext* ctx) const;

  ModelConfig config_;
  text::Vocab vocab_;
  mutable Rng symbol_rng_;

  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::StackedBiGru> encoder_;
  std::unique_ptr<nn::Linear> init_proj_;      // W1 for d_0
  std::unique_ptr<nn::GruCell> decoder_cell_;
  std::unique_ptr<nn::AdditiveAttention> attention_;
  std::unique_ptr<nn::Linear> query_proj_;     // W3 d_i
  std::unique_ptr<nn::Linear> output_proj_;    // U
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_SEQ2SEQ_H_
