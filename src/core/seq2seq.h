#ifndef NLIDB_CORE_SEQ2SEQ_H_
#define NLIDB_CORE_SEQ2SEQ_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/config.h"
#include "core/decode_grammar.h"
#include "core/translator_interface.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/rnn.h"
#include "text/vocab.h"

namespace nlidb {
namespace core {

/// Which decoder implementation `Decode` runs (DESIGN.md §12).
///
///  * kReference — the original tape-based beam search. The equivalence
///    baseline every other mode is gated against.
///  * kReferenceMasked — reference control flow plus the grammar mask.
///    Exists as the differential-fuzz oracle for kFast; not a serving
///    mode.
///  * kFastUnmasked — graph-free arena/GEMM fast path, bitwise identical
///    to kReference (same sequences, same scores, same errors).
///  * kFast — the serving default: fast path plus grammar-constrained
///    decoding (bitwise identical to kReferenceMasked). Falls back to
///    kFastUnmasked behavior when the vocabulary or annotation options
///    make the mask inapplicable.
enum class DecodeMode { kReference, kReferenceMasked, kFastUnmasked, kFast };

class FastDecodeState;

/// In-place top-k selection over `ids` by (scores[id] descending, id
/// ascending) — ties always resolve to the lower index, so selection
/// order is pinned across implementations. Truncates `ids` to
/// min(k, ids.size()) using nth_element + sort of the winning slice
/// instead of a full sort.
void TopKByScore(std::vector<int>* ids, const float* scores, int k);

/// TopKByScore over the identity domain [0, count).
std::vector<int> TopKScoreIndices(const float* scores, int count, int k);

/// The sequence-to-sequence translator of Sec. V: annotated question q^a
/// to annotated SQL s^a.
///
///  * Encoder: stacked bidirectional GRU with per-layer input affines.
///  * Decoder: attentive GRU (Bahdanau attention) whose initial state is
///    tanh(W1 [fw_N; bw_1]).
///  * Copy mechanism: output scores are exp(U [d_i, beta_i]) + M_i with
///    M_i[token] accumulating exp(e_ij) over source positions j holding
///    that token — the paper's additive variant, not softmax-over-vocab.
///  * Tied embeddings between encoder input, decoder input and output.
///  * Annotation symbols (c_i / v_i / g_i) embed as the concatenation of
///    a type vector and an index vector (Sec. VII-A2).
///
/// Inference is beam search (width `config.beam_width`); an emitted <unk>
/// is replaced by the source token under the attention peak (pointer-style
/// fallback for out-of-vocabulary literals).
class Seq2SeqTranslator : public TranslatorInterface {
 public:
  explicit Seq2SeqTranslator(const ModelConfig& config);

  /// Adds tokens of a training corpus to the shared vocabulary.
  /// Annotation symbols receive structured type+index embeddings.
  void AddVocabulary(const std::vector<std::string>& tokens) override;

  /// Freezes the vocabulary (unseen tokens become <unk> afterwards).
  void FreezeVocabulary() { vocab_.Freeze(); }

  /// Teacher-forced loss (mean over target steps) for one pair.
  Var Loss(const std::vector<std::string>& source,
           const std::vector<std::string>& target) const override;

  /// Result of `Decode`: the output tokens, the length-normalized
  /// log-probability of the winning hypothesis, whether the degraded
  /// greedy path produced them (beam search exhausted every hypothesis),
  /// and whether the graph-free fast path served the query.
  struct Decoded {
    std::vector<std::string> tokens;
    float score = 0.0f;
    bool used_greedy_fallback = false;
    bool used_fast_path = false;
  };

  /// Deadline-aware decoding, the query-path entry point. Beam search
  /// (width `config.beam_width`) with graceful degradation: if the beam
  /// exhausts without any finished hypothesis, retries with greedy
  /// decode (recorded in `Decoded::used_greedy_fallback` and the
  /// `seq2seq.greedy_fallbacks` counter) instead of failing the query.
  /// `ctx` (optional) is polled every decode step; expiry surfaces as
  /// DeadlineExceeded. Empty source is InvalidArgument.
  /// Runs the decoder selected by `decode_mode()` (the graph-free fast
  /// path by default; see DecodeMode).
  StatusOr<Decoded> Decode(const std::vector<std::string>& source,
                           const CancelContext* ctx = nullptr) const;

  /// `Decode` with an explicit beam width (bench and eval harnesses);
  /// `beam_width >= 1`.
  StatusOr<Decoded> DecodeWithBeamWidth(const std::vector<std::string>& source,
                                        int beam_width,
                                        const CancelContext* ctx = nullptr) const;

  /// The decoder implementation `Decode` uses. Defaults to the
  /// NLIDB_DECODE environment variable (reference | reference_masked |
  /// fast_unmasked | fast), read once at construction; `fast` when unset.
  DecodeMode decode_mode() const {
    return decode_mode_.load(std::memory_order_relaxed);
  }
  void set_decode_mode(DecodeMode mode) {
    decode_mode_.store(mode, std::memory_order_relaxed);
  }
  static DecodeMode DecodeModeFromEnv();

  /// Beam-search translation of a source sequence. Thin wrapper over
  /// `Decode` satisfying TranslatorInterface; decode errors surface as
  /// an empty token sequence here.
  std::vector<std::string> Translate(
      const std::vector<std::string>& source) const override;

  /// Greedy decode (beam width 1 shortcut, used in tests).
  std::vector<std::string> TranslateGreedy(
      const std::vector<std::string>& source) const;

  void CollectParameters(std::vector<Var>* out) const override;

  const text::Vocab& vocab() const { return vocab_; }
  const ModelConfig& config() const { return config_; }

 private:
  /// The resumable fast-path decode state (core/seq2seq_fast.h) reads the
  /// model parameters and config directly; it is the implementation of
  /// FastBeamSearch, factored out so the serving batcher can interleave
  /// decode steps of concurrent queries.
  friend class FastDecodeState;

  struct EncoderOutput {
    Var states;       // [n, 2h]
    Var memory_proj;  // attention projection of states
    Var d0;           // initial decoder state [1, 2h]
    std::vector<int> source_ids;
  };
  EncoderOutput Encode(const std::vector<std::string>& source) const;

  struct StepOutput {
    Var state;     // next decoder state
    Var scores;    // [1, V] positive scores (copy-augmented)
    Var energies;  // [1, n] raw attention energies
    Var weights;   // [1, n] attention weights
  };
  StepOutput DecodeStep(const EncoderOutput& enc, const Var& prev_state,
                        int prev_token) const;

  /// A finished search: the winning token sequence plus its
  /// length-normalized log-probability.
  struct ScoredTokens {
    std::vector<std::string> tokens;
    float score = 0.0f;
  };

  /// Dispatches to the decoder implementation selected by decode_mode().
  StatusOr<ScoredTokens> Search(const std::vector<std::string>& source,
                                int beam_width, const CancelContext* ctx) const;

  /// Reference tape-based beam search. `grammar` non-null restricts
  /// scoring/selection to the legal token set (kReferenceMasked).
  StatusOr<ScoredTokens> BeamSearch(const std::vector<std::string>& source,
                                    int beam_width, const CancelContext* ctx,
                                    const DecodeGrammar* grammar) const;

  /// Graph-free inference fast path (core/seq2seq_fast.cc): cached
  /// per-query encoder state, batched beam-frontier GEMMs on arena
  /// buffers, optional grammar mask. Replicates BeamSearch semantics
  /// bitwise (same-masked comparison).
  StatusOr<ScoredTokens> FastBeamSearch(const std::vector<std::string>& source,
                                        int beam_width, bool use_grammar_mask,
                                        const CancelContext* ctx) const;

  /// The grammar mask only applies under the default annotated-question
  /// representation: with column-name appending or header encoding
  /// disabled (ablation configs), legal output tokens need not occur in
  /// q^a and masking could veto correct hypotheses.
  bool GrammarMaskEligible() const {
    return config_.column_name_appending && config_.table_header_encoding;
  }

  ModelConfig config_;
  text::Vocab vocab_;
  mutable Rng symbol_rng_;
  std::atomic<DecodeMode> decode_mode_{DecodeMode::kFast};

  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::StackedBiGru> encoder_;
  std::unique_ptr<nn::Linear> init_proj_;      // W1 for d_0
  std::unique_ptr<nn::GruCell> decoder_cell_;
  std::unique_ptr<nn::AdditiveAttention> attention_;
  std::unique_ptr<nn::Linear> query_proj_;     // W3 d_i
  std::unique_ptr<nn::Linear> output_proj_;    // U
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_SEQ2SEQ_H_
