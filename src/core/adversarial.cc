#include "core/adversarial.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

StatusOr<InfluenceProfile> AdversarialLocator::ComputeInfluence(
    const ColumnMentionClassifier& classifier,
    const std::vector<std::string>& question,
    const std::vector<std::string>& column) const {
  StatusOr<ColumnMentionClassifier::ForwardResult> fr_or =
      classifier.Forward(question, column);
  if (!fr_or.ok()) return fr_or.status();
  ColumnMentionClassifier::ForwardResult fr = std::move(fr_or).value();
  // The paper takes dL/dq with L the classifier loss. Since
  // dL/dE = (sigmoid(z) - target) * dz/dE, the loss gradient is the
  // logit gradient scaled by a constant that underflows to exactly zero
  // in float once the classifier saturates (p -> 1). We therefore
  // backpropagate from the logit z itself: identical influence *profile*
  // (what the span search consumes), numerically stable at saturation.
  Var loss = fr.logit;
  // The embedding lookup nodes must expose gradients even though we never
  // update them here.
  fr.question_word_embeddings->requires_grad = true;
  for (auto& v : fr.question_char_embeddings) v->requires_grad = true;
  {
    // Influence probing only reads gradients at the embedding *lookup*
    // nodes, never at the weights. The scope makes Backward skip every
    // write into parameter leaves, which (a) drops the useless dW GEMMs
    // and (b) removes the only shared-state writes, so the annotator can
    // fan ComputeInfluence calls for different columns across the thread
    // pool (the lookup nodes and all intermediates are per-graph).
    InferenceGradScope scope;
    Backward(loss);
  }

  const int n = static_cast<int>(question.size());
  InfluenceProfile profile;
  profile.word_level.resize(n, 0.0f);
  profile.char_level.resize(n, 0.0f);
  profile.total.resize(n, 0.0f);
  const float p = config_.influence_norm_p;
  const Tensor& wg = fr.question_word_embeddings->grad;
  for (int i = 0; i < n; ++i) {
    if (!wg.empty()) {
      // ||dL/dE_word(w_i)||_p over the i-th row.
      float s = 0.0f;
      for (int j = 0; j < wg.cols(); ++j) {
        s += std::pow(std::fabs(wg(i, j)), p);
      }
      profile.word_level[i] = std::pow(s, 1.0f / p);
    }
    const Tensor& cg = fr.question_char_embeddings[i]->grad;
    if (!cg.empty()) profile.char_level[i] = cg.NormP(p);
    profile.total[i] = config_.influence_alpha * profile.word_level[i] +
                       config_.influence_beta * profile.char_level[i];
  }
  return profile;
}

text::Span AdversarialLocator::LocateSpan(
    const InfluenceProfile& profile) const {
  const int n = static_cast<int>(profile.total.size());
  if (n == 0) return text::Span{};
  int peak = 0;
  for (int i = 1; i < n; ++i) {
    if (profile.total[i] > profile.total[peak]) peak = i;
  }
  const float threshold = 0.5f * profile.total[peak];
  int begin = peak;
  int end = peak + 1;
  // Greedy bidirectional extension by the stronger neighbor, bounded by
  // the maximum mention length.
  while (end - begin < config_.max_mention_length) {
    const float left = begin > 0 ? profile.total[begin - 1] : -1.0f;
    const float right = end < n ? profile.total[end] : -1.0f;
    if (left < threshold && right < threshold) break;
    if (left >= right) {
      --begin;
    } else {
      ++end;
    }
  }
  return text::Span{begin, end};
}

StatusOr<text::Span> AdversarialLocator::LocateMention(
    const ColumnMentionClassifier& classifier,
    const std::vector<std::string>& question,
    const std::vector<std::string>& column) const {
  StatusOr<InfluenceProfile> profile =
      ComputeInfluence(classifier, question, column);
  if (!profile.ok()) return profile.status();
  return LocateSpan(*profile);
}

}  // namespace core
}  // namespace nlidb
