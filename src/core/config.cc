#include "core/config.h"

#include "common/thread_pool.h"

namespace nlidb {
namespace core {

int ModelConfig::ResolveNumThreads() const {
  if (num_threads >= 1) return num_threads;
  // DefaultParallelism reads NLIDB_NUM_THREADS (clamped >= 1) and falls
  // back to hardware concurrency.
  return ThreadPool::DefaultParallelism();
}

ModelConfig ModelConfig::Tiny() {
  ModelConfig c;
  c.word_dim = 24;
  c.char_dim = 8;
  c.char_per_width = 4;
  c.char_widths = {3, 4};
  c.classifier_hidden = 24;
  c.classifier_mlp_hidden = 24;
  c.classifier_epochs = 2;
  c.value_mlp_hidden = 24;
  c.value_epochs = 2;
  c.seq2seq_hidden = 32;
  c.seq2seq_epochs = 4;
  c.beam_width = 3;
  return c;
}

ModelConfig ModelConfig::Paper() {
  ModelConfig c;
  c.word_dim = 300;
  c.char_dim = 32;
  c.char_per_width = 32;
  c.char_widths = {3, 4, 5, 6, 7};
  c.classifier_hidden = 200;
  c.classifier_layers = 2;
  c.classifier_mlp_hidden = 200;
  c.classifier_epochs = 10;
  c.value_mlp_hidden = 200;
  c.value_epochs = 10;
  c.seq2seq_hidden = 400;  // decoder hidden = 2 * 400 as in the paper
  c.seq2seq_epochs = 20;
  c.beam_width = 5;
  c.grad_clip = 5.0f;
  return c;
}

}  // namespace core
}  // namespace nlidb
