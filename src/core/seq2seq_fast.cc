/// Graph-free decoder inference fast path (DESIGN.md §12/§13).
///
/// `FastDecodeState` re-implements `Seq2SeqTranslator::BeamSearch` without
/// the autodiff tape: every intermediate lives in a Workspace arena, every
/// matrix product is a direct GemmAccumulateRaw call, and the GRU gate
/// products for the whole beam frontier are batched into single [B, 3H]
/// GEMMs. The per-query encoder state (encoder states, projected attention
/// keys, copy-scatter slot table, gathered output columns for the grammar
/// mask) is computed once and reused every step.
///
/// The state is resumable at the gate-GEMM boundary (see seq2seq_fast.h):
/// `Seq2SeqTranslator::FastBeamSearch` is the single-query driver, and
/// serving/batched_decoder.cc drives many states through shared ComputeGates
/// calls. Both produce the same bits because every computation outside
/// ComputeGates is per-query and ComputeGates is row-local bitwise.
///
/// The contract is bitwise equivalence with the reference implementation:
/// kFastUnmasked reproduces kReference and kFast reproduces
/// kReferenceMasked — same token sequences, same hypothesis scores, same
/// error statuses. That only holds because (a) this TU replicates each
/// elementwise formula of tensor/ops.cc in the reference evaluation order,
/// (b) GemmAccumulateRaw shares the deterministic kernels whose per-output
/// accumulation order is independent of batching and threading, and
/// (c) this file compiles with -ffp-contract=off like the kernel TUs, so
/// the compiler cannot fuse the replicated expressions into FMAs the
/// reference path never executed (src/core/CMakeLists.txt pins the flag).
#include "core/seq2seq_fast.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/workspace.h"
#include "core/seq2seq.h"
#include "tensor/tensor.h"

namespace nlidb {
namespace core {

namespace {

constexpr int kVocabBudget = 1536;  // mirrors seq2seq.cc (lint-checked)

/// ops::Sigmoid formula.
inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// ops::Exp formula (clamped).
inline float ClampedExpF(float x) { return std::exp(std::min(x, 20.0f)); }

/// ops::AddRowBroadcast: out[i, :] += bias for every row.
void AddBiasRows(float* out, const float* bias, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

/// GruCell::Step after the two gate GEMMs, batched over `batch` rows:
/// gi/gh are [batch, 3H] with biases already added, h_prev/h_next are
/// [batch, H]. Gate layout [reset, update, new]; the h' association
/// (n - z*n) + (z*h) matches rnn.cc exactly.
void GruElementwise(const float* gi, const float* gh, const float* h_prev,
                    float* h_next, int batch, int H) {
  for (int b = 0; b < batch; ++b) {
    const float* gib = gi + static_cast<size_t>(b) * 3 * H;
    const float* ghb = gh + static_cast<size_t>(b) * 3 * H;
    const float* hp = h_prev + static_cast<size_t>(b) * H;
    float* hn = h_next + static_cast<size_t>(b) * H;
    for (int j = 0; j < H; ++j) {
      const float r = SigmoidF(gib[j] + ghb[j]);
      const float z = SigmoidF(gib[H + j] + ghb[H + j]);
      const float n = std::tanh(gib[2 * H + j] + r * ghb[2 * H + j]);
      hn[j] = (n - z * n) + (z * hp[j]);
    }
  }
}

/// One GRU direction over a precomputed input sequence. `xs` is [n, H]
/// (the per-layer affine output), `states` receives [n, H] hidden states
/// in position order; the pass walks positions first..last by `stride`
/// (+1 forward, -1 backward). gi for every position is batched into one
/// [n, 3H] GEMM up front — only the recurrent gh product is sequential.
void RunGruDirection(const nn::GruCell& cell, const float* xs, int n, int H,
                     int first, int stride, float* states, Workspace& ws) {
  Workspace::Scope scope(ws);
  float* gi_all = ws.Floats(static_cast<size_t>(n) * 3 * H);
  GemmAccumulateRaw(xs, cell.w_ih()->value.data(), gi_all, n, H, 3 * H);
  AddBiasRows(gi_all, cell.b_ih()->value.data(), n, 3 * H);
  float* h = ws.Floats(H);  // zero initial state
  float* gh = ws.Floats(3 * H);
  const float* b_hh = cell.b_hh()->value.data();
  const float* w_hh = cell.w_hh()->value.data();
  for (int s = 0, i = first; s < n; ++s, i += stride) {
    std::fill_n(gh, 3 * H, 0.0f);
    GemmAccumulateRaw(h, w_hh, gh, 1, H, 3 * H);
    AddBiasRows(gh, b_hh, 1, 3 * H);
    float* out = states + static_cast<size_t>(i) * H;
    GruElementwise(gi_all + static_cast<size_t>(i) * 3 * H, gh, h, out, 1, H);
    std::memcpy(h, out, sizeof(float) * H);
  }
}

}  // namespace

FastDecodeState::FastDecodeState(const Seq2SeqTranslator& translator,
                                 const std::vector<std::string>& source,
                                 int beam_width, bool use_grammar_mask,
                                 Workspace& ws)
    : t_(translator),
      source_(source),
      beam_width_(beam_width),
      ws_(ws),
      d_(translator.config_.word_dim),
      h_(translator.config_.seq2seq_hidden),
      att_(translator.config_.seq2seq_hidden),
      h2_(2 * translator.config_.seq2seq_hidden),
      h4_(4 * translator.config_.seq2seq_hidden),
      xin_(translator.config_.word_dim + 2 * translator.config_.seq2seq_hidden),
      vocab_size_(translator.vocab_.size()),
      n_(static_cast<int>(source.size())),
      // The grammar is built per query (vocabulary classification is O(V)
      // on token strings); an unusable grammar downgrades to unmasked
      // decoding.
      grammar_(translator.vocab_),
      masked_(use_grammar_mask && grammar_.usable()) {}

bool FastDecodeState::WantsMask(const Seq2SeqTranslator& translator,
                                DecodeMode mode) {
  return mode == DecodeMode::kFast && translator.GrammarMaskEligible();
}

Status FastDecodeState::Admit() {
  if (source_.empty()) {
    return Status::InvalidArgument("cannot decode an empty source sequence");
  }
  if (beam_width_ > 1) {
    // Injectable exhaustion: lets tests exercise the greedy-fallback path
    // without crafting a model whose beams genuinely all die.
    NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("seq2seq/beam_exhausted"));
  }
  return Status::Ok();
}

void FastDecodeState::BuildEncoderCache() {
  const int d = d_;
  const int h = h_;
  const int att = att_;
  const int h2 = h2_;
  const int h4 = h4_;
  const int vocab_size = vocab_size_;
  const int n = n_;
  Workspace& ws = ws_;

  // ---- Per-query encoder cache -------------------------------------------
  {
    trace::TraceSpan encode_span("seq2seq.encode");
    encode_span.Annotate("source_len", static_cast<int64_t>(n));
    cache_.source_ids = t_.vocab_.Encode(source_);

    // Embedding gather: [n, d].
    const Tensor& table = t_.embedding_->table()->value;
    float* seq = ws.Floats(static_cast<size_t>(n) * d);
    for (int i = 0; i < n; ++i) {
      std::memcpy(seq + static_cast<size_t>(i) * d,
                  table.data() + static_cast<size_t>(cache_.source_ids[i]) * d,
                  sizeof(float) * d);
    }

    // Stacked bidirectional GRU, layer by layer. The per-position input
    // affine of rnn.cc is batched into one [n, in]x[in, h] GEMM; forward
    // and backward recurrences stay sequential.
    int in_width = d;
    const float* layer_in = seq;
    float* fw = ws.Floats(static_cast<size_t>(n) * h);
    float* bw = ws.Floats(static_cast<size_t>(n) * h);
    cache_.enc_states = ws.Floats(static_cast<size_t>(n) * h2);
    for (int l = 0; l < t_.encoder_->num_layers(); ++l) {
      Workspace::Scope layer_scope(ws);
      const nn::Linear& affine = t_.encoder_->input_affine(l);
      float* xs = ws.Floats(static_cast<size_t>(n) * h);
      GemmAccumulateRaw(layer_in, affine.weight()->value.data(), xs, n,
                        in_width, h);
      AddBiasRows(xs, affine.bias()->value.data(), n, h);
      RunGruDirection(t_.encoder_->forward_cell(l), xs, n, h, 0, 1, fw, ws);
      RunGruDirection(t_.encoder_->backward_cell(l), xs, n, h, n - 1, -1, bw,
                      ws);
      for (int i = 0; i < n; ++i) {
        std::memcpy(cache_.enc_states + static_cast<size_t>(i) * h2,
                    fw + static_cast<size_t>(i) * h, sizeof(float) * h);
        std::memcpy(cache_.enc_states + static_cast<size_t>(i) * h2 + h,
                    bw + static_cast<size_t>(i) * h, sizeof(float) * h);
      }
      layer_in = cache_.enc_states;
      in_width = h2;
    }

    // d0 = tanh(W1 [fw_last ; bw_first] + b1).
    float* cat0 = ws.Floats(h2);
    std::memcpy(cat0, fw + static_cast<size_t>(n - 1) * h, sizeof(float) * h);
    std::memcpy(cat0 + h, bw, sizeof(float) * h);
    cache_.d0 = ws.Floats(h2);
    GemmAccumulateRaw(cat0, t_.init_proj_->weight()->value.data(), cache_.d0,
                      1, h2, h2);
    AddBiasRows(cache_.d0, t_.init_proj_->bias()->value.data(), 1, h2);
    for (int j = 0; j < h2; ++j) cache_.d0[j] = std::tanh(cache_.d0[j]);

    // Projected attention keys: [n, 2h] x [2h, att].
    cache_.mem_proj = ws.Floats(static_cast<size_t>(n) * att);
    GemmAccumulateRaw(
        cache_.enc_states,
        t_.attention_->memory_projection().weight()->value.data(),
        cache_.mem_proj, n, h2, att);

    if (masked_) {
      // Emittable-token domain: structural tokens plus everything the
      // source can supply, in ascending vocab-id order (so masked sums
      // walk ids in the same order as the reference masked path).
      cache_.in_source.assign(vocab_size, 0);
      for (int id : cache_.source_ids) cache_.in_source[id] = 1;
      std::vector<int> slot_of_id(vocab_size, -1);
      for (int id = 0; id < vocab_size; ++id) {
        const DecodeGrammar::TokenClass c = grammar_.Classify(id);
        const bool structural = c == DecodeGrammar::TokenClass::kSelect ||
                                c == DecodeGrammar::TokenClass::kWhere ||
                                c == DecodeGrammar::TokenClass::kAnd ||
                                c == DecodeGrammar::TokenClass::kAgg ||
                                c == DecodeGrammar::TokenClass::kOp ||
                                c == DecodeGrammar::TokenClass::kEos ||
                                c == DecodeGrammar::TokenClass::kUnk;
        if (structural || cache_.in_source[id]) {
          slot_of_id[id] = static_cast<int>(cache_.domain.size());
          cache_.domain.push_back(id);
        }
      }
      cache_.slot_of_src.resize(n);
      for (int i = 0; i < n; ++i) {
        cache_.slot_of_src[i] = slot_of_id[cache_.source_ids[i]];
      }
      // Gather U's columns (and bias entries) for the domain once per
      // query: logits over the domain then cost [B, 4h]x[4h, |domain|]
      // instead of [B, 4h]x[4h, kVocabBudget] per step.
      const int ds = static_cast<int>(cache_.domain.size());
      const Tensor& u = t_.output_proj_->weight()->value;
      const Tensor& ub = t_.output_proj_->bias()->value;
      cache_.u_sub = ws.Floats(static_cast<size_t>(h4) * ds);
      cache_.bias_sub = ws.Floats(ds);
      for (int k = 0; k < h4; ++k) {
        const float* urow = u.data() + static_cast<size_t>(k) * kVocabBudget;
        float* srow = cache_.u_sub + static_cast<size_t>(k) * ds;
        for (int s = 0; s < ds; ++s) srow[s] = urow[cache_.domain[s]];
      }
      for (int s = 0; s < ds; ++s) {
        cache_.bias_sub[s] = ub(cache_.domain[s]);
      }
    }
  }

  // ---- Beam-search state --------------------------------------------------
  const int W = beam_width_;
  score_width_ =
      masked_ ? static_cast<int>(cache_.domain.size()) : vocab_size;
  gemm_width_ = masked_ ? score_width_ : kVocabBudget;

  // Beam-state ping-pong buffers and per-step scratch, allocated once.
  // The frontier's GRU staging buffers (x/gi/gh/d_gather) are the
  // driver's: a batching driver sizes them for the sum of its queries'
  // frontiers, the single-query driver for W rows.
  d_prev_ = ws.Floats(static_cast<size_t>(W) * h2);
  beta_prev_ = ws.Floats(static_cast<size_t>(W) * h2);
  d_swap_ = ws.Floats(static_cast<size_t>(W) * h2);
  beta_swap_ = ws.Floats(static_cast<size_t>(W) * h2);
  d_next_ = ws.Floats(static_cast<size_t>(W) * h2);
  query_ = ws.Floats(static_cast<size_t>(W) * att);
  tanh_keys_ = ws.Floats(static_cast<size_t>(n) * att);
  energies_ = ws.Floats(n);
  weights_all_ = ws.Floats(static_cast<size_t>(W) * n);
  beta_next_ = ws.Floats(static_cast<size_t>(W) * h2);
  cat_ = ws.Floats(static_cast<size_t>(W) * h4);
  logits_ = ws.Floats(static_cast<size_t>(W) * gemm_width_);
  mass_ = ws.Floats(score_width_);
  scores_ = ws.Floats(static_cast<size_t>(W) * score_width_);

  FastBeam init;
  init.prev_token = text::Vocab::kBos;
  std::memcpy(d_prev_, cache_.d0, sizeof(float) * h2);
  // beta_prev row 0 is already zero (arena buffers are zero-initialized).
  beams_ = {init};
}

Status FastDecodeState::BeginStep(const CancelContext* ctx) {
  if (step_ >= t_.config_.max_decode_length) {
    done_ = true;
    return Status::Ok();
  }
  // Decode steps dominate query latency, so the deadline is polled at
  // this granularity (same contract as the reference path).
  NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "seq2seq.decode"));

  // Live frontier.
  live_.clear();
  for (int b = 0; b < static_cast<int>(beams_.size()); ++b) {
    if (!beams_[b].finished) live_.push_back(b);
  }
  const int B = static_cast<int>(live_.size());
  if (B == 0) {
    done_ = true;
    return Status::Ok();
  }

  // Output-safe early termination. Per-step log-prob increments are
  // log(p + 1e-12f) with p = score/(sum + 1e-9f) <= 1.0f in float
  // (score is one of the summed positive terms and float addition of
  // positives is monotone), so log_prob never increases along a path.
  // A hypothesis finishing later divides by a denominator of at most
  // max_decode_length, and x/len is monotone in len for x <= 0, so
  // log_prob / max_decode_length bounds every descendant's normalized
  // score (float division is monotone, so the bound holds bitwise).
  // When every live hypothesis is strictly below the best finished
  // score, nothing the remaining steps could add survives the strict
  // ">" selection in TakeResult — the reference loop would do the work
  // and then discard it, so stopping here returns the identical result.
  if (!finished_.empty()) {
    float best_norm = -1e30f;
    for (const FastBeam& f : finished_) {
      const float denom =
          static_cast<float>(std::max<size_t>(1, f.tokens.size()));
      best_norm = std::max(best_norm, f.log_prob / denom);
    }
    const float len_cap = static_cast<float>(t_.config_.max_decode_length);
    bool viable = false;
    for (const int b : live_) {
      if (!(beams_[b].log_prob / len_cap < best_norm)) {
        viable = true;
        break;
      }
    }
    if (!viable) {
      done_ = true;
      return Status::Ok();
    }
  }

  static metrics::Counter& decode_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.decode_steps");
  static metrics::Counter& copy_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.copy_steps");
  decode_steps.Increment(B);
  if (t_.config_.use_copy_mechanism) copy_steps.Increment(B);

  frontier_rows_ = B;
  return Status::Ok();
}

void FastDecodeState::StageFrontier(float* x, float* d_gather) const {
  const int d = d_;
  const int h2 = h2_;
  const int xin = xin_;
  const Tensor& emb_table = t_.embedding_->table()->value;
  // Stage [emb(prev) ; beta_prev] and gather d_prev for the frontier.
  for (int r = 0; r < frontier_rows_; ++r) {
    const FastBeam& beam = beams_[live_[r]];
    std::memcpy(x + static_cast<size_t>(r) * xin,
                emb_table.data() + static_cast<size_t>(beam.prev_token) * d,
                sizeof(float) * d);
    std::memcpy(x + static_cast<size_t>(r) * xin + d,
                beta_prev_ + static_cast<size_t>(beam.slot) * h2,
                sizeof(float) * h2);
    std::memcpy(d_gather + static_cast<size_t>(r) * h2,
                d_prev_ + static_cast<size_t>(beam.slot) * h2,
                sizeof(float) * h2);
  }
}

void FastDecodeState::ComputeGates(const Seq2SeqTranslator& translator,
                                   const float* x, const float* d_gather,
                                   int rows, float* gi, float* gh) {
  const int h2 = 2 * translator.config_.seq2seq_hidden;
  const int xin = translator.config_.word_dim + h2;
  const float* dec_w_ih = translator.decoder_cell_->w_ih()->value.data();
  const float* dec_w_hh = translator.decoder_cell_->w_hh()->value.data();
  const float* dec_b_ih = translator.decoder_cell_->b_ih()->value.data();
  const float* dec_b_hh = translator.decoder_cell_->b_hh()->value.data();
  // Batched GRU gates for the whole frontier: two [rows, 3H] GEMMs. The
  // kernels' per-output accumulation order is independent of `rows`
  // (tensor/tensor.h contract) and the bias add is row-local, so any
  // concatenation of query frontiers produces each row's bits unchanged.
  std::fill_n(gi, static_cast<size_t>(rows) * 3 * h2, 0.0f);
  GemmAccumulateRaw(x, dec_w_ih, gi, rows, xin, 3 * h2);
  AddBiasRows(gi, dec_b_ih, rows, 3 * h2);
  std::fill_n(gh, static_cast<size_t>(rows) * 3 * h2, 0.0f);
  GemmAccumulateRaw(d_gather, dec_w_hh, gh, rows, h2, 3 * h2);
  AddBiasRows(gh, dec_b_hh, rows, 3 * h2);
}

void FastDecodeState::FinishStep(const float* gi, const float* gh,
                                 const float* d_gather) {
  const int att = att_;
  const int h2 = h2_;
  const int h4 = h4_;
  const int vocab_size = vocab_size_;
  const int n = n_;
  const int B = frontier_rows_;
  const int score_width = score_width_;
  const int gemm_width = gemm_width_;

  const float* q_w = t_.query_proj_->weight()->value.data();
  const float* v_w = t_.attention_->score_vector().weight()->value.data();
  const float* out_w = t_.output_proj_->weight()->value.data();
  const float* out_b = t_.output_proj_->bias()->value.data();

  GruElementwise(gi, gh, d_gather, d_next_, B, h2);

  // Attention query contribution W3 d_i, batched: [B, 2h] x [2h, att].
  std::fill_n(query_, static_cast<size_t>(B) * att, 0.0f);
  GemmAccumulateRaw(d_next_, q_w, query_, B, h2, att);

  // Attention + context per frontier row (memory rows differ per query,
  // not per beam, but the softmax/argmax are row-local anyway).
  for (int r = 0; r < B; ++r) {
    const float* qrow = query_ + static_cast<size_t>(r) * att;
    for (int i = 0; i < n; ++i) {
      const float* mrow = cache_.mem_proj + static_cast<size_t>(i) * att;
      float* trow = tanh_keys_ + static_cast<size_t>(i) * att;
      for (int a = 0; a < att; ++a) trow[a] = std::tanh(mrow[a] + qrow[a]);
    }
    std::fill_n(energies_, n, 0.0f);
    GemmAccumulateRaw(tanh_keys_, v_w, energies_, n, att, 1);

    // SoftmaxRows over [1, n] (unclamped exp, reference loop order).
    float* wrow = weights_all_ + static_cast<size_t>(r) * n;
    float mx = energies_[0];
    for (int i = 1; i < n; ++i) mx = std::max(mx, energies_[i]);
    float wsum = 0.0f;
    for (int i = 0; i < n; ++i) {
      wrow[i] = std::exp(energies_[i] - mx);
      wsum += wrow[i];
    }
    for (int i = 0; i < n; ++i) wrow[i] /= wsum;

    // beta_i = weights x enc_states: [1, n] x [n, 2h].
    float* brow = beta_next_ + static_cast<size_t>(r) * h2;
    std::fill_n(brow, h2, 0.0f);
    GemmAccumulateRaw(wrow, cache_.enc_states, brow, 1, n, h2);

    std::memcpy(cat_ + static_cast<size_t>(r) * h4,
                d_next_ + static_cast<size_t>(r) * h2, sizeof(float) * h2);
    std::memcpy(cat_ + static_cast<size_t>(r) * h4 + h2, brow,
                sizeof(float) * h2);

    // Output scores: exp(U [d;beta] + b) plus copy mass. The copy mass
    // accumulates in its own zeroed buffer and is added afterwards,
    // replicating ops::Add(Exp(logits), ScatterSumCols(...)) so the
    // float addition association matches the reference bitwise.
    float* lrow = logits_ + static_cast<size_t>(r) * gemm_width;
    std::fill_n(lrow, gemm_width, 0.0f);
    const float* w_mat = masked_ ? cache_.u_sub : out_w;
    GemmAccumulateRaw(cat_ + static_cast<size_t>(r) * h4, w_mat, lrow, 1, h4,
                      gemm_width);
    AddBiasRows(lrow, masked_ ? cache_.bias_sub : out_b, 1, score_width);
    float* srow = scores_ + static_cast<size_t>(r) * score_width;
    if (t_.config_.use_copy_mechanism) {
      std::fill_n(mass_, score_width, 0.0f);
      for (int i = 0; i < n; ++i) {
        const int slot =
            masked_ ? cache_.slot_of_src[i] : cache_.source_ids[i];
        mass_[slot] += ClampedExpF(energies_[i]);
      }
      for (int s = 0; s < score_width; ++s) {
        srow[s] = ClampedExpF(lrow[s]) + mass_[s];
      }
    } else {
      for (int s = 0; s < score_width; ++s) srow[s] = ClampedExpF(lrow[s]);
    }
  }

  static metrics::Counter& masked_tokens =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.grammar_masked_tokens");

  // Candidate expansion: identical control flow, sums and tie-breaks to
  // the reference (domain slots ascend in vocab-id order, so masked
  // normalization sums walk the same ids in the same order).
  std::vector<Candidate> candidates;
  const int k = std::min(beam_width_, vocab_size);
  for (int r = 0; r < B; ++r) {
    const FastBeam& beam = beams_[live_[r]];
    const float* srow = scores_ + static_cast<size_t>(r) * score_width;
    float sum = 0.0f;
    std::vector<int> top;
    if (masked_) {
      std::vector<int> legal;
      legal.reserve(score_width);
      for (int s = 0; s < score_width; ++s) {
        if (grammar_.IsLegal(beam.grammar_state, cache_.domain[s],
                             cache_.in_source)) {
          legal.push_back(s);
        }
      }
      masked_tokens.Increment(vocab_size - static_cast<int>(legal.size()));
      for (int s : legal) sum += srow[s];
      top = std::move(legal);
      TopKByScore(&top, srow, k);
    } else {
      for (int j = 0; j < vocab_size; ++j) sum += srow[j];
      top = TopKScoreIndices(srow, vocab_size, k);
    }
    for (const int sel : top) {
      const int tok = masked_ ? cache_.domain[sel] : sel;
      if (!masked_ && (tok == text::Vocab::kPad || tok == text::Vocab::kBos)) {
        continue;
      }
      const float p = srow[sel] / (sum + 1e-9f);
      Candidate c;
      c.parent_slot = r;  // row in d_next/beta_next
      c.beam = beam;
      c.beam.prev_token = tok;
      c.beam.log_prob = beam.log_prob + std::log(p + 1e-12f);
      if (masked_) {
        c.beam.grammar_state = grammar_.Advance(beam.grammar_state, tok);
      }
      if (tok == text::Vocab::kEos) {
        c.beam.finished = true;
      } else if (tok == text::Vocab::kUnk) {
        // Pointer fallback: emit the source token under the attention
        // peak instead of a literal <unk>.
        const float* wrow = weights_all_ + static_cast<size_t>(r) * n;
        int peak = 0;
        for (int i = 1; i < n; ++i) {
          if (wrow[i] > wrow[peak]) peak = i;
        }
        c.beam.tokens.push_back(source_[peak]);
      } else {
        c.beam.tokens.push_back(t_.vocab_.GetToken(tok));
      }
      candidates.push_back(std::move(c));
    }
  }
  ++step_;
  if (candidates.empty()) {
    done_ = true;
    return;
  }
  // stable_sort pins candidate order on log-prob ties to construction
  // order (beam order, then score rank), matching the reference path.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.beam.log_prob > b.beam.log_prob;
                   });
  beams_.clear();
  for (Candidate& c : candidates) {
    if (c.beam.finished) {
      finished_.push_back(std::move(c.beam));
    } else if (static_cast<int>(beams_.size()) < beam_width_) {
      const int slot = static_cast<int>(beams_.size());
      std::memcpy(d_swap_ + static_cast<size_t>(slot) * h2,
                  d_next_ + static_cast<size_t>(c.parent_slot) * h2,
                  sizeof(float) * h2);
      std::memcpy(beta_swap_ + static_cast<size_t>(slot) * h2,
                  beta_next_ + static_cast<size_t>(c.parent_slot) * h2,
                  sizeof(float) * h2);
      c.beam.slot = slot;
      beams_.push_back(std::move(c.beam));
    }
    if (static_cast<int>(beams_.size()) >= beam_width_ &&
        static_cast<int>(finished_.size()) >= beam_width_) {
      break;
    }
  }
  std::swap(d_prev_, d_swap_);
  std::swap(beta_prev_, beta_swap_);
  if (beams_.empty()) done_ = true;
}

StatusOr<FastDecodeState::Result> FastDecodeState::TakeResult() {
  for (FastBeam& b : beams_) finished_.push_back(std::move(b));
  beams_.clear();
  if (finished_.empty()) {
    return Status::Internal("beam search exhausted every hypothesis");
  }
  // Length-normalized selection.
  FastBeam* best = &finished_[0];
  float best_score = -1e30f;
  for (FastBeam& b : finished_) {
    const float denom =
        static_cast<float>(std::max<size_t>(1, b.tokens.size()));
    const float s = b.log_prob / denom;
    if (s > best_score) {
      best_score = s;
      best = &b;
    }
  }
  return Result{std::move(best->tokens), best_score};
}

StatusOr<Seq2SeqTranslator::ScoredTokens> Seq2SeqTranslator::FastBeamSearch(
    const std::vector<std::string>& source, int beam_width,
    bool use_grammar_mask, const CancelContext* ctx) const {
  Workspace& ws = Workspace::ThreadLocal();
  Workspace::Scope query_scope(ws);
  FastDecodeState state(*this, source, beam_width, use_grammar_mask, ws);
  NLIDB_RETURN_IF_ERROR(state.Admit());
  trace::TraceSpan span("seq2seq.translate");
  span.Annotate("beam_width", static_cast<int64_t>(beam_width));
  state.BuildEncoderCache();

  trace::TraceSpan decode_span("seq2seq.decode");
  // Frontier staging buffers for the single-query driver: one query, so
  // at most beam_width rows per step.
  const int W = beam_width;
  const int xin = state.x_width();
  const int h2 = state.h_width();
  float* x = ws.Floats(static_cast<size_t>(W) * xin);
  float* gi = ws.Floats(static_cast<size_t>(W) * 3 * h2);
  float* gh = ws.Floats(static_cast<size_t>(W) * 3 * h2);
  float* d_gather = ws.Floats(static_cast<size_t>(W) * h2);
  while (true) {
    NLIDB_RETURN_IF_ERROR(state.BeginStep(ctx));
    if (state.done()) break;
    state.StageFrontier(x, d_gather);
    FastDecodeState::ComputeGates(*this, x, d_gather, state.frontier_rows(),
                                  gi, gh);
    state.FinishStep(gi, gh, d_gather);
  }
  StatusOr<FastDecodeState::Result> result = state.TakeResult();
  if (!result.ok()) return result.status();
  return ScoredTokens{std::move(result->tokens), result->score};
}

}  // namespace core
}  // namespace nlidb
