/// Graph-free decoder inference fast path (DESIGN.md §12).
///
/// `FastBeamSearch` re-implements `Seq2SeqTranslator::BeamSearch` without
/// the autodiff tape: every intermediate lives in the thread-local
/// Workspace arena, every matrix product is a direct GemmAccumulateRaw
/// call, and the GRU gate products for the whole beam frontier are batched
/// into single [B, 3H] GEMMs. The per-query encoder state (encoder states,
/// projected attention keys, copy-scatter slot table, gathered output
/// columns for the grammar mask) is computed once and reused every step.
///
/// The contract is bitwise equivalence with the reference implementation:
/// kFastUnmasked reproduces kReference and kFast reproduces
/// kReferenceMasked — same token sequences, same hypothesis scores, same
/// error statuses. That only holds because (a) this TU replicates each
/// elementwise formula of tensor/ops.cc in the reference evaluation order,
/// (b) GemmAccumulateRaw shares the deterministic kernels whose per-output
/// accumulation order is independent of batching and threading, and
/// (c) this file compiles with -ffp-contract=off like the kernel TUs, so
/// the compiler cannot fuse the replicated expressions into FMAs the
/// reference path never executed (src/core/CMakeLists.txt pins the flag).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/workspace.h"
#include "core/seq2seq.h"
#include "tensor/tensor.h"

namespace nlidb {
namespace core {

namespace {

constexpr int kVocabBudget = 1536;  // mirrors seq2seq.cc (lint-checked)

/// ops::Sigmoid formula.
inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// ops::Exp formula (clamped).
inline float ClampedExpF(float x) { return std::exp(std::min(x, 20.0f)); }

/// ops::AddRowBroadcast: out[i, :] += bias for every row.
void AddBiasRows(float* out, const float* bias, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

/// GruCell::Step after the two gate GEMMs, batched over `batch` rows:
/// gi/gh are [batch, 3H] with biases already added, h_prev/h_next are
/// [batch, H]. Gate layout [reset, update, new]; the h' association
/// (n - z*n) + (z*h) matches rnn.cc exactly.
void GruElementwise(const float* gi, const float* gh, const float* h_prev,
                    float* h_next, int batch, int H) {
  for (int b = 0; b < batch; ++b) {
    const float* gib = gi + static_cast<size_t>(b) * 3 * H;
    const float* ghb = gh + static_cast<size_t>(b) * 3 * H;
    const float* hp = h_prev + static_cast<size_t>(b) * H;
    float* hn = h_next + static_cast<size_t>(b) * H;
    for (int j = 0; j < H; ++j) {
      const float r = SigmoidF(gib[j] + ghb[j]);
      const float z = SigmoidF(gib[H + j] + ghb[H + j]);
      const float n = std::tanh(gib[2 * H + j] + r * ghb[2 * H + j]);
      hn[j] = (n - z * n) + (z * hp[j]);
    }
  }
}

/// One GRU direction over a precomputed input sequence. `xs` is [n, H]
/// (the per-layer affine output), `states` receives [n, H] hidden states
/// in position order; the pass walks positions first..last by `stride`
/// (+1 forward, -1 backward). gi for every position is batched into one
/// [n, 3H] GEMM up front — only the recurrent gh product is sequential.
void RunGruDirection(const nn::GruCell& cell, const float* xs, int n, int H,
                     int first, int stride, float* states, Workspace& ws) {
  Workspace::Scope scope(ws);
  float* gi_all = ws.Floats(static_cast<size_t>(n) * 3 * H);
  GemmAccumulateRaw(xs, cell.w_ih()->value.data(), gi_all, n, H, 3 * H);
  AddBiasRows(gi_all, cell.b_ih()->value.data(), n, 3 * H);
  float* h = ws.Floats(H);  // zero initial state
  float* gh = ws.Floats(3 * H);
  const float* b_hh = cell.b_hh()->value.data();
  const float* w_hh = cell.w_hh()->value.data();
  for (int s = 0, i = first; s < n; ++s, i += stride) {
    std::fill_n(gh, 3 * H, 0.0f);
    GemmAccumulateRaw(h, w_hh, gh, 1, H, 3 * H);
    AddBiasRows(gh, b_hh, 1, 3 * H);
    float* out = states + static_cast<size_t>(i) * H;
    GruElementwise(gi_all + static_cast<size_t>(i) * 3 * H, gh, h, out, 1, H);
    std::memcpy(h, out, sizeof(float) * H);
  }
}

/// Per-query cached encoder state: everything `DecodeStep` would recompute
/// from the encoder outputs, plus the grammar-mask tables.
struct EncoderCache {
  int n = 0;                    // source length
  std::vector<int> source_ids;  // vocab ids of the source tokens
  float* enc_states = nullptr;  // [n, 2h] bidirectional states
  float* mem_proj = nullptr;    // [n, att] projected attention keys
  float* d0 = nullptr;          // [2h] initial decoder state

  // Grammar-mask extras (empty when masking is off).
  std::vector<int> domain;        // sorted vocab ids the mask can emit
  std::vector<int> slot_of_src;   // domain slot per source position
  std::vector<uint8_t> in_source; // by vocab id
  float* u_sub = nullptr;         // [4h, |domain|] gathered output columns
  float* bias_sub = nullptr;      // [|domain|] gathered output bias
};

}  // namespace

StatusOr<Seq2SeqTranslator::ScoredTokens> Seq2SeqTranslator::FastBeamSearch(
    const std::vector<std::string>& source, int beam_width,
    bool use_grammar_mask, const CancelContext* ctx) const {
  if (source.empty()) {
    return Status::InvalidArgument("cannot decode an empty source sequence");
  }
  if (beam_width > 1) {
    // Injectable exhaustion: lets tests exercise the greedy-fallback path
    // without crafting a model whose beams genuinely all die.
    NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("seq2seq/beam_exhausted"));
  }
  trace::TraceSpan span("seq2seq.translate");
  span.Annotate("beam_width", static_cast<int64_t>(beam_width));

  const int d = config_.word_dim;
  const int h = config_.seq2seq_hidden;
  const int att = h;
  const int h2 = 2 * h;  // decoder hidden size H
  const int h4 = 4 * h;  // [d_i ; beta_i] width
  const int vocab_size = vocab_.size();
  const int n = static_cast<int>(source.size());

  static metrics::Counter& decode_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.decode_steps");
  static metrics::Counter& copy_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.copy_steps");
  static metrics::Counter& masked_tokens =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.grammar_masked_tokens");

  Workspace& ws = Workspace::ThreadLocal();
  Workspace::Scope query_scope(ws);

  // The grammar is built per query (vocabulary classification is O(V) on
  // token strings); an unusable grammar downgrades to unmasked decoding.
  DecodeGrammar grammar(vocab_);
  const bool masked = use_grammar_mask && grammar.usable();

  // ---- Per-query encoder cache -------------------------------------------
  EncoderCache cache;
  cache.n = n;
  {
    trace::TraceSpan encode_span("seq2seq.encode");
    encode_span.Annotate("source_len", static_cast<int64_t>(n));
    cache.source_ids = vocab_.Encode(source);

    // Embedding gather: [n, d].
    const Tensor& table = embedding_->table()->value;
    float* seq = ws.Floats(static_cast<size_t>(n) * d);
    for (int i = 0; i < n; ++i) {
      std::memcpy(seq + static_cast<size_t>(i) * d,
                  table.data() + static_cast<size_t>(cache.source_ids[i]) * d,
                  sizeof(float) * d);
    }

    // Stacked bidirectional GRU, layer by layer. The per-position input
    // affine of rnn.cc is batched into one [n, in]x[in, h] GEMM; forward
    // and backward recurrences stay sequential.
    int in_width = d;
    const float* layer_in = seq;
    float* fw = ws.Floats(static_cast<size_t>(n) * h);
    float* bw = ws.Floats(static_cast<size_t>(n) * h);
    cache.enc_states = ws.Floats(static_cast<size_t>(n) * h2);
    for (int l = 0; l < encoder_->num_layers(); ++l) {
      Workspace::Scope layer_scope(ws);
      const nn::Linear& affine = encoder_->input_affine(l);
      float* xs = ws.Floats(static_cast<size_t>(n) * h);
      GemmAccumulateRaw(layer_in, affine.weight()->value.data(), xs, n,
                        in_width, h);
      AddBiasRows(xs, affine.bias()->value.data(), n, h);
      RunGruDirection(encoder_->forward_cell(l), xs, n, h, 0, 1, fw, ws);
      RunGruDirection(encoder_->backward_cell(l), xs, n, h, n - 1, -1, bw, ws);
      for (int i = 0; i < n; ++i) {
        std::memcpy(cache.enc_states + static_cast<size_t>(i) * h2,
                    fw + static_cast<size_t>(i) * h, sizeof(float) * h);
        std::memcpy(cache.enc_states + static_cast<size_t>(i) * h2 + h,
                    bw + static_cast<size_t>(i) * h, sizeof(float) * h);
      }
      layer_in = cache.enc_states;
      in_width = h2;
    }

    // d0 = tanh(W1 [fw_last ; bw_first] + b1).
    float* cat0 = ws.Floats(h2);
    std::memcpy(cat0, fw + static_cast<size_t>(n - 1) * h, sizeof(float) * h);
    std::memcpy(cat0 + h, bw, sizeof(float) * h);
    cache.d0 = ws.Floats(h2);
    GemmAccumulateRaw(cat0, init_proj_->weight()->value.data(), cache.d0, 1,
                      h2, h2);
    AddBiasRows(cache.d0, init_proj_->bias()->value.data(), 1, h2);
    for (int j = 0; j < h2; ++j) cache.d0[j] = std::tanh(cache.d0[j]);

    // Projected attention keys: [n, 2h] x [2h, att].
    cache.mem_proj = ws.Floats(static_cast<size_t>(n) * att);
    GemmAccumulateRaw(cache.enc_states,
                      attention_->memory_projection().weight()->value.data(),
                      cache.mem_proj, n, h2, att);

    if (masked) {
      // Emittable-token domain: structural tokens plus everything the
      // source can supply, in ascending vocab-id order (so masked sums
      // walk ids in the same order as the reference masked path).
      cache.in_source.assign(vocab_size, 0);
      for (int id : cache.source_ids) cache.in_source[id] = 1;
      std::vector<int> slot_of_id(vocab_size, -1);
      for (int id = 0; id < vocab_size; ++id) {
        const DecodeGrammar::TokenClass c = grammar.Classify(id);
        const bool structural = c == DecodeGrammar::TokenClass::kSelect ||
                                c == DecodeGrammar::TokenClass::kWhere ||
                                c == DecodeGrammar::TokenClass::kAnd ||
                                c == DecodeGrammar::TokenClass::kAgg ||
                                c == DecodeGrammar::TokenClass::kOp ||
                                c == DecodeGrammar::TokenClass::kEos ||
                                c == DecodeGrammar::TokenClass::kUnk;
        if (structural || cache.in_source[id]) {
          slot_of_id[id] = static_cast<int>(cache.domain.size());
          cache.domain.push_back(id);
        }
      }
      cache.slot_of_src.resize(n);
      for (int i = 0; i < n; ++i) {
        cache.slot_of_src[i] = slot_of_id[cache.source_ids[i]];
      }
      // Gather U's columns (and bias entries) for the domain once per
      // query: logits over the domain then cost [B, 4h]x[4h, |domain|]
      // instead of [B, 4h]x[4h, kVocabBudget] per step.
      const int ds = static_cast<int>(cache.domain.size());
      const Tensor& u = output_proj_->weight()->value;
      const Tensor& ub = output_proj_->bias()->value;
      cache.u_sub = ws.Floats(static_cast<size_t>(h4) * ds);
      cache.bias_sub = ws.Floats(ds);
      for (int k = 0; k < h4; ++k) {
        const float* urow = u.data() + static_cast<size_t>(k) * kVocabBudget;
        float* srow = cache.u_sub + static_cast<size_t>(k) * ds;
        for (int s = 0; s < ds; ++s) srow[s] = urow[cache.domain[s]];
      }
      for (int s = 0; s < ds; ++s) {
        cache.bias_sub[s] = ub(cache.domain[s]);
      }
    }
  }

  // ---- Batched beam search ------------------------------------------------
  trace::TraceSpan decode_span("seq2seq.decode");

  struct FastBeam {
    int prev_token = text::Vocab::kBos;
    int grammar_state = DecodeGrammar::kStart;
    int slot = 0;  // row in d_prev/beta_prev
    std::vector<std::string> tokens;
    float log_prob = 0.0f;
    bool finished = false;
  };

  const int W = beam_width;
  const int score_width = masked ? static_cast<int>(cache.domain.size())
                                 : vocab_size;
  const int gemm_width = masked ? score_width : kVocabBudget;
  const int xin = d + h2;  // decoder GRU input width

  // Beam-state ping-pong buffers and per-step scratch, allocated once.
  float* d_prev = ws.Floats(static_cast<size_t>(W) * h2);
  float* beta_prev = ws.Floats(static_cast<size_t>(W) * h2);
  float* d_swap = ws.Floats(static_cast<size_t>(W) * h2);
  float* beta_swap = ws.Floats(static_cast<size_t>(W) * h2);
  float* x = ws.Floats(static_cast<size_t>(W) * xin);
  float* gi = ws.Floats(static_cast<size_t>(W) * 3 * h2);
  float* gh = ws.Floats(static_cast<size_t>(W) * 3 * h2);
  float* d_gather = ws.Floats(static_cast<size_t>(W) * h2);
  float* d_next = ws.Floats(static_cast<size_t>(W) * h2);
  float* query = ws.Floats(static_cast<size_t>(W) * att);
  float* tanh_keys = ws.Floats(static_cast<size_t>(n) * att);
  float* energies = ws.Floats(n);
  float* weights_all = ws.Floats(static_cast<size_t>(W) * n);
  float* beta_next = ws.Floats(static_cast<size_t>(W) * h2);
  float* cat = ws.Floats(static_cast<size_t>(W) * h4);
  float* logits = ws.Floats(static_cast<size_t>(W) * gemm_width);
  float* mass = ws.Floats(score_width);
  float* scores = ws.Floats(static_cast<size_t>(W) * score_width);

  const Tensor& emb_table = embedding_->table()->value;
  const float* dec_w_ih = decoder_cell_->w_ih()->value.data();
  const float* dec_w_hh = decoder_cell_->w_hh()->value.data();
  const float* dec_b_ih = decoder_cell_->b_ih()->value.data();
  const float* dec_b_hh = decoder_cell_->b_hh()->value.data();
  const float* q_w = query_proj_->weight()->value.data();
  const float* v_w = attention_->score_vector().weight()->value.data();
  const float* out_w = output_proj_->weight()->value.data();
  const float* out_b = output_proj_->bias()->value.data();

  FastBeam init;
  std::memcpy(d_prev, cache.d0, sizeof(float) * h2);
  // beta_prev row 0 is already zero (arena buffers are zero-initialized).
  std::vector<FastBeam> beams = {init};
  std::vector<FastBeam> finished;

  struct Candidate {
    int parent_slot = 0;
    FastBeam beam;
  };

  for (int step = 0; step < config_.max_decode_length; ++step) {
    // Decode steps dominate query latency, so the deadline is polled at
    // this granularity (same contract as the reference path).
    NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "seq2seq.decode"));

    // Live frontier.
    std::vector<int> live;
    for (int b = 0; b < static_cast<int>(beams.size()); ++b) {
      if (!beams[b].finished) live.push_back(b);
    }
    const int B = static_cast<int>(live.size());
    if (B == 0) break;

    // Output-safe early termination. Per-step log-prob increments are
    // log(p + 1e-12f) with p = score/(sum + 1e-9f) <= 1.0f in float
    // (score is one of the summed positive terms and float addition of
    // positives is monotone), so log_prob never increases along a path.
    // A hypothesis finishing later divides by a denominator of at most
    // max_decode_length, and x/len is monotone in len for x <= 0, so
    // log_prob / max_decode_length bounds every descendant's normalized
    // score (float division is monotone, so the bound holds bitwise).
    // When every live hypothesis is strictly below the best finished
    // score, nothing the remaining steps could add survives the strict
    // ">" selection below — the reference loop would do the work and
    // then discard it, so stopping here returns the identical result.
    if (!finished.empty()) {
      float best_norm = -1e30f;
      for (const FastBeam& f : finished) {
        const float denom =
            static_cast<float>(std::max<size_t>(1, f.tokens.size()));
        best_norm = std::max(best_norm, f.log_prob / denom);
      }
      const float len_cap = static_cast<float>(config_.max_decode_length);
      bool viable = false;
      for (const int b : live) {
        if (!(beams[b].log_prob / len_cap < best_norm)) {
          viable = true;
          break;
        }
      }
      if (!viable) break;
    }
    decode_steps.Increment(B);
    if (config_.use_copy_mechanism) copy_steps.Increment(B);

    // Stage [emb(prev) ; beta_prev] and gather d_prev for the frontier.
    for (int r = 0; r < B; ++r) {
      const FastBeam& beam = beams[live[r]];
      std::memcpy(x + static_cast<size_t>(r) * xin,
                  emb_table.data() +
                      static_cast<size_t>(beam.prev_token) * d,
                  sizeof(float) * d);
      std::memcpy(x + static_cast<size_t>(r) * xin + d,
                  beta_prev + static_cast<size_t>(beam.slot) * h2,
                  sizeof(float) * h2);
      std::memcpy(d_gather + static_cast<size_t>(r) * h2,
                  d_prev + static_cast<size_t>(beam.slot) * h2,
                  sizeof(float) * h2);
    }

    // Batched GRU gates for the whole frontier: two [B, 3H] GEMMs.
    std::fill_n(gi, static_cast<size_t>(B) * 3 * h2, 0.0f);
    GemmAccumulateRaw(x, dec_w_ih, gi, B, xin, 3 * h2);
    AddBiasRows(gi, dec_b_ih, B, 3 * h2);
    std::fill_n(gh, static_cast<size_t>(B) * 3 * h2, 0.0f);
    GemmAccumulateRaw(d_gather, dec_w_hh, gh, B, h2, 3 * h2);
    AddBiasRows(gh, dec_b_hh, B, 3 * h2);
    GruElementwise(gi, gh, d_gather, d_next, B, h2);

    // Attention query contribution W3 d_i, batched: [B, 2h] x [2h, att].
    std::fill_n(query, static_cast<size_t>(B) * att, 0.0f);
    GemmAccumulateRaw(d_next, q_w, query, B, h2, att);

    // Attention + context per frontier row (memory rows differ per query,
    // not per beam, but the softmax/argmax are row-local anyway).
    for (int r = 0; r < B; ++r) {
      const float* qrow = query + static_cast<size_t>(r) * att;
      for (int i = 0; i < n; ++i) {
        const float* mrow = cache.mem_proj + static_cast<size_t>(i) * att;
        float* trow = tanh_keys + static_cast<size_t>(i) * att;
        for (int a = 0; a < att; ++a) trow[a] = std::tanh(mrow[a] + qrow[a]);
      }
      std::fill_n(energies, n, 0.0f);
      GemmAccumulateRaw(tanh_keys, v_w, energies, n, att, 1);

      // SoftmaxRows over [1, n] (unclamped exp, reference loop order).
      float* wrow = weights_all + static_cast<size_t>(r) * n;
      float mx = energies[0];
      for (int i = 1; i < n; ++i) mx = std::max(mx, energies[i]);
      float wsum = 0.0f;
      for (int i = 0; i < n; ++i) {
        wrow[i] = std::exp(energies[i] - mx);
        wsum += wrow[i];
      }
      for (int i = 0; i < n; ++i) wrow[i] /= wsum;

      // beta_i = weights x enc_states: [1, n] x [n, 2h].
      float* brow = beta_next + static_cast<size_t>(r) * h2;
      std::fill_n(brow, h2, 0.0f);
      GemmAccumulateRaw(wrow, cache.enc_states, brow, 1, n, h2);

      std::memcpy(cat + static_cast<size_t>(r) * h4,
                  d_next + static_cast<size_t>(r) * h2, sizeof(float) * h2);
      std::memcpy(cat + static_cast<size_t>(r) * h4 + h2, brow,
                  sizeof(float) * h2);

      // Output scores: exp(U [d;beta] + b) plus copy mass. The copy mass
      // accumulates in its own zeroed buffer and is added afterwards,
      // replicating ops::Add(Exp(logits), ScatterSumCols(...)) so the
      // float addition association matches the reference bitwise.
      float* lrow = logits + static_cast<size_t>(r) * gemm_width;
      std::fill_n(lrow, gemm_width, 0.0f);
      const float* w_mat = masked ? cache.u_sub : out_w;
      GemmAccumulateRaw(cat + static_cast<size_t>(r) * h4, w_mat, lrow, 1, h4,
                        gemm_width);
      AddBiasRows(lrow, masked ? cache.bias_sub : out_b, 1, score_width);
      float* srow = scores + static_cast<size_t>(r) * score_width;
      if (config_.use_copy_mechanism) {
        std::fill_n(mass, score_width, 0.0f);
        for (int i = 0; i < n; ++i) {
          const int slot = masked ? cache.slot_of_src[i] : cache.source_ids[i];
          mass[slot] += ClampedExpF(energies[i]);
        }
        for (int s = 0; s < score_width; ++s) {
          srow[s] = ClampedExpF(lrow[s]) + mass[s];
        }
      } else {
        for (int s = 0; s < score_width; ++s) srow[s] = ClampedExpF(lrow[s]);
      }
    }

    // Candidate expansion: identical control flow, sums and tie-breaks to
    // the reference (domain slots ascend in vocab-id order, so masked
    // normalization sums walk the same ids in the same order).
    std::vector<Candidate> candidates;
    const int k = std::min(beam_width, vocab_size);
    for (int r = 0; r < B; ++r) {
      const FastBeam& beam = beams[live[r]];
      const float* srow = scores + static_cast<size_t>(r) * score_width;
      float sum = 0.0f;
      std::vector<int> top;
      if (masked) {
        std::vector<int> legal;
        legal.reserve(score_width);
        for (int s = 0; s < score_width; ++s) {
          if (grammar.IsLegal(beam.grammar_state, cache.domain[s],
                              cache.in_source)) {
            legal.push_back(s);
          }
        }
        masked_tokens.Increment(vocab_size - static_cast<int>(legal.size()));
        for (int s : legal) sum += srow[s];
        top = std::move(legal);
        TopKByScore(&top, srow, k);
      } else {
        for (int j = 0; j < vocab_size; ++j) sum += srow[j];
        top = TopKScoreIndices(srow, vocab_size, k);
      }
      for (const int sel : top) {
        const int tok = masked ? cache.domain[sel] : sel;
        if (!masked &&
            (tok == text::Vocab::kPad || tok == text::Vocab::kBos)) {
          continue;
        }
        const float p = srow[sel] / (sum + 1e-9f);
        Candidate c;
        c.parent_slot = r;  // row in d_next/beta_next
        c.beam = beam;
        c.beam.prev_token = tok;
        c.beam.log_prob = beam.log_prob + std::log(p + 1e-12f);
        if (masked) {
          c.beam.grammar_state = grammar.Advance(beam.grammar_state, tok);
        }
        if (tok == text::Vocab::kEos) {
          c.beam.finished = true;
        } else if (tok == text::Vocab::kUnk) {
          // Pointer fallback: emit the source token under the attention
          // peak instead of a literal <unk>.
          const float* wrow = weights_all + static_cast<size_t>(r) * n;
          int peak = 0;
          for (int i = 1; i < n; ++i) {
            if (wrow[i] > wrow[peak]) peak = i;
          }
          c.beam.tokens.push_back(source[peak]);
        } else {
          c.beam.tokens.push_back(vocab_.GetToken(tok));
        }
        candidates.push_back(std::move(c));
      }
    }
    if (candidates.empty()) break;
    // stable_sort pins candidate order on log-prob ties to construction
    // order (beam order, then score rank), matching the reference path.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.beam.log_prob > b.beam.log_prob;
                     });
    beams.clear();
    for (Candidate& c : candidates) {
      if (c.beam.finished) {
        finished.push_back(std::move(c.beam));
      } else if (static_cast<int>(beams.size()) < beam_width) {
        const int slot = static_cast<int>(beams.size());
        std::memcpy(d_swap + static_cast<size_t>(slot) * h2,
                    d_next + static_cast<size_t>(c.parent_slot) * h2,
                    sizeof(float) * h2);
        std::memcpy(beta_swap + static_cast<size_t>(slot) * h2,
                    beta_next + static_cast<size_t>(c.parent_slot) * h2,
                    sizeof(float) * h2);
        c.beam.slot = slot;
        beams.push_back(std::move(c.beam));
      }
      if (static_cast<int>(beams.size()) >= beam_width &&
          static_cast<int>(finished.size()) >= beam_width) {
        break;
      }
    }
    std::swap(d_prev, d_swap);
    std::swap(beta_prev, beta_swap);
    if (beams.empty()) break;
  }
  for (FastBeam& b : beams) finished.push_back(std::move(b));
  if (finished.empty()) {
    return Status::Internal("beam search exhausted every hypothesis");
  }
  // Length-normalized selection.
  const FastBeam* best = &finished[0];
  float best_score = -1e30f;
  for (const FastBeam& b : finished) {
    const float denom =
        static_cast<float>(std::max<size_t>(1, b.tokens.size()));
    const float s = b.log_prob / denom;
    if (s > best_score) {
      best_score = s;
      best = &b;
    }
  }
  return ScoredTokens{best->tokens, best_score};
}

}  // namespace core
}  // namespace nlidb
