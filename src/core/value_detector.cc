#include "core/value_detector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

ValueDetector::ValueDetector(const ModelConfig& config,
                             const text::EmbeddingProvider& provider)
    : config_(config), provider_(&provider) {
  Rng rng(config_.seed + 1);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{2 * provider.dim(), config_.value_mlp_hidden, 1}, rng);
}

StatusOr<Var> ValueDetector::ForwardFromVectors(
    const std::vector<float>& span_embedding,
    const std::vector<float>& column_stats) const {
  const int d = provider_->dim();
  if (static_cast<int>(span_embedding.size()) != d ||
      static_cast<int>(column_stats.size()) != d) {
    return Status::InvalidArgument(
        "ValueDetector input dims: span=" +
        std::to_string(span_embedding.size()) +
        " stats=" + std::to_string(column_stats.size()) + " want=" +
        std::to_string(d));
  }
  // Input features: [s_c - s_span, s_c * s_span] (paper Sec. IV-D).
  Tensor input({1, 2 * d});
  for (int j = 0; j < d; ++j) {
    input(0, j) = column_stats[j] - span_embedding[j];
    input(0, d + j) = column_stats[j] * span_embedding[j];
  }
  return mlp_->Forward(MakeVar(std::move(input)));
}

StatusOr<float> ValueDetector::Score(
    const std::vector<std::string>& span_tokens,
    const sql::ColumnStatistics& stats) const {
  const std::vector<float> span_emb = provider_->PhraseVector(span_tokens);
  StatusOr<Var> logit = ForwardFromVectors(span_emb, stats.embedding);
  if (!logit.ok()) return logit.status();
  return 1.0f / (1.0f + std::exp(-(*logit)->value.vec()[0]));
}

std::vector<text::Span> ValueDetector::CandidateSpans(
    const std::vector<std::string>& tokens) const {
  std::vector<text::Span> spans;
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) {
    if (text::IsStopWord(tokens[i])) continue;
    for (int j = i + 1; j <= std::min(n, i + config_.max_value_span); ++j) {
      if (text::IsStopWord(tokens[j - 1])) break;
      spans.push_back(text::Span{i, j});
    }
  }
  return spans;
}

StatusOr<std::vector<ValueDetector::Detection>> ValueDetector::Detect(
    const std::vector<std::string>& tokens,
    const std::vector<sql::ColumnStatistics>& table_stats,
    const CancelContext* ctx) const {
  std::vector<Detection> detections;
  for (const text::Span& span : CandidateSpans(tokens)) {
    NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "value_detector.detect"));
    std::vector<std::string> span_tokens(tokens.begin() + span.begin,
                                         tokens.begin() + span.end);
    bool all_numeric = true;
    for (const auto& t : span_tokens) all_numeric = all_numeric && LooksNumeric(t);
    Detection det;
    det.span = span;
    for (size_t c = 0; c < table_stats.size(); ++c) {
      // Type compatibility: a real column only takes all-numeric spans
      // ("june 23" can never be a laps value).
      if (table_stats[c].type == sql::DataType::kReal && !all_numeric) continue;
      StatusOr<float> score = Score(span_tokens, table_stats[c]);
      if (!score.ok()) return score.status();
      if (*score > 0.5f) {
        det.column_scores.push_back({static_cast<int>(c), *score});
      }
    }
    if (det.column_scores.empty()) continue;
    std::sort(det.column_scores.begin(), det.column_scores.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    detections.push_back(std::move(det));
  }
  return detections;
}

void ValueDetector::CollectParameters(std::vector<Var>* out) const {
  mlp_->CollectParameters(out);
}

}  // namespace core
}  // namespace nlidb
