#ifndef NLIDB_CORE_COLUMN_MENTION_CLASSIFIER_H_
#define NLIDB_CORE_COLUMN_MENTION_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "nn/attention.h"
#include "nn/char_cnn.h"
#include "nn/layers.h"
#include "nn/rnn.h"
#include "text/embedding_provider.h"
#include "text/vocab.h"

namespace nlidb {
namespace core {

/// The machine-comprehension binary classifier of Sec. IV-B: given a
/// question q and a column c, predicts whether c is mentioned in q.
///
/// Architecture (Fig. 3):
///  (i)  word embedder emb(w) = [E_word(w), E_char(w)] with a char-CNN
///       over widths {3..7} (Fig. 4);
///  (ii) a stacked LSTM over the question and a separate stacked LSTM
///       over the column words;
///  (iii) a bidirectional LSTM over the column states with additive
///       attention into the question states; the per-step outputs d_t are
///       zero-padded to `max_column_words`, concatenated and fed to an
///       MLP that emits one logit.
///
/// `Forward` exposes the embedding-lookup graph nodes so the adversarial
/// locator can read dL/dE_word(w) and dL/dE_char(w) after Backward.
class ColumnMentionClassifier : public nn::Module {
 public:
  ColumnMentionClassifier(const ModelConfig& config,
                          const text::EmbeddingProvider& provider);

  /// Registers question/column words into the trainable word vocabulary,
  /// initializing new rows from the embedding provider. Call for the
  /// training corpus before training; unseen inference words map to <unk>
  /// (their char-level representation still carries signal).
  void AddVocabulary(const std::vector<std::string>& words);

  struct ForwardResult {
    Var logit;                       // [1,1]
    Var question_word_embeddings;    // [n, word_dim] lookup node
    std::vector<Var> question_char_embeddings;  // per token: [1, char_out]
  };

  /// Runs the classifier on (question tokens, column words).
  /// InvalidArgument when either sequence is empty — malformed input is
  /// a request error, not a process-fatal invariant (DESIGN.md
  /// "Fault-tolerance architecture").
  StatusOr<ForwardResult> Forward(const std::vector<std::string>& question,
                                  const std::vector<std::string>& column) const;

  /// P(column mentioned in question) = sigmoid(logit).
  StatusOr<float> Predict(const std::vector<std::string>& question,
                          const std::vector<std::string>& column) const;

  /// Scores every column against the question in one batched graph,
  /// returning probabilities in column order, bitwise identical to
  /// calling Predict per column. The question encoding (embeddings,
  /// question LSTM, attention memory projection) — the dominant cost of
  /// Predict — is computed once and shared; columns of equal capped
  /// length walk the attention bi-LSTM in lockstep as rows of one state
  /// matrix; and all feature rows go through the head MLP as a single
  /// GEMM (DESIGN.md "Performance architecture").
  StatusOr<std::vector<float>> PredictBatch(
      const std::vector<std::string>& question,
      const std::vector<std::vector<std::string>>& columns) const;

  void CollectParameters(std::vector<Var>* out) const override;

  const ModelConfig& config() const { return config_; }
  const text::Vocab& vocab() const { return vocab_; }

 private:
  StatusOr<Var> Embed(const std::vector<std::string>& words,
                      Var* word_lookup,
                      std::vector<Var>* char_outputs) const;

  ModelConfig config_;
  const text::EmbeddingProvider* provider_;
  text::Vocab vocab_;
  text::CharVocab char_vocab_;

  std::unique_ptr<nn::Embedding> word_embedding_;
  std::unique_ptr<nn::CharCnnEmbedder> char_embedder_;
  std::unique_ptr<nn::StackedLstm> question_lstm_;
  std::unique_ptr<nn::StackedLstm> column_lstm_;
  // Attention bi-LSTM over column states.
  std::unique_ptr<nn::AdditiveAttention> attention_;
  std::unique_ptr<nn::Linear> query_state_proj_;   // W2 s_t^c
  std::unique_ptr<nn::Linear> query_hidden_proj_;  // W3 d_{t-1} (+ b)
  std::unique_ptr<nn::LstmCell> fwd_cell_;
  std::unique_ptr<nn::LstmCell> bwd_cell_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_COLUMN_MENTION_CLASSIFIER_H_
