#ifndef NLIDB_CORE_CONFIG_H_
#define NLIDB_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

namespace nlidb {
namespace core {

/// Hyperparameters for the full NLIDB stack.
///
/// `Paper()` reproduces the configuration of Sec. VII-A2 (GRU hidden
/// 400/800, 300-d embeddings, char-CNN widths 3..7, clip 5.0, beam 5).
/// `Small()` is the scaled-down default that trains the whole system in
/// minutes on one CPU core with the from-scratch engine; every benchmark
/// binary uses it unless overridden. Orderings between models/ablations —
/// the reproduction target — are preserved at this scale (EXPERIMENTS.md).
struct ModelConfig {
  // Embeddings. word_dim must equal the EmbeddingProvider dimension.
  int word_dim = 48;
  int char_dim = 12;
  int char_per_width = 8;
  std::vector<int> char_widths = {3, 4, 5};

  // Column mention classifier (Sec. IV-B).
  int classifier_hidden = 48;
  int classifier_layers = 1;
  int classifier_mlp_hidden = 48;
  int max_column_words = 4;  // d_t zero-padding length
  int classifier_epochs = 4;
  float classifier_lr = 3e-3f;

  // Adversarial locator (Sec. IV-C).
  float influence_alpha = 1.0f;  // word-level weight
  float influence_beta = 1.0f;   // char-level weight
  float influence_norm_p = 2.0f; // lp-norm
  int max_mention_length = 5;

  // Mention resolution (Sec. IV-E). false = score-only pairing ablation.
  bool use_dependency_resolution = true;

  // Value detector (Sec. IV-D).
  int value_mlp_hidden = 48;
  int max_value_span = 3;
  int value_epochs = 3;
  float value_lr = 2e-3f;

  // Seq2seq translator (Sec. V).
  int seq2seq_hidden = 64;   // encoder per-direction; decoder uses 2x
  int seq2seq_layers = 1;
  int beam_width = 5;
  int max_decode_length = 40;
  int seq2seq_epochs = 8;
  float seq2seq_lr = 2e-3f;
  /// Probability of training a step against a randomly degraded gold
  /// annotation (exposure robustness to annotator errors).
  float annotation_noise_probability = 0.3f;
  float grad_clip = 5.0f;
  bool use_copy_mechanism = true;
  bool column_name_appending = true;   // vs. symbol substitution (Fig. 6a)
  bool table_header_encoding = true;   // g_i symbols (Fig. 6b)

  uint64_t seed = 7;

  /// Worker threads for the inference substrate (GEMM row partitioning
  /// and the annotator's per-column influence fan-out). 0 = resolve at
  /// pipeline construction via ResolveNumThreads(): the NLIDB_NUM_THREADS
  /// environment variable if set, else hardware concurrency. 1 forces the
  /// fully serial path. Any value produces bitwise-identical results
  /// (DESIGN.md "Performance architecture").
  int num_threads = 0;

  /// `num_threads` with defaults applied: the explicit value if >= 1,
  /// else NLIDB_NUM_THREADS, else hardware concurrency; always >= 1.
  int ResolveNumThreads() const;

  /// Scaled-down configuration (default).
  static ModelConfig Small() { return ModelConfig(); }

  /// Tiny configuration for unit tests: smallest dims that still learn.
  static ModelConfig Tiny();

  /// The paper's configuration (Sec. VII-A2); needs serious compute.
  static ModelConfig Paper();
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_CONFIG_H_
