#include "core/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

Annotation GoldAnnotation(const data::Example& example) {
  struct Proto {
    MentionPair pair;
    int position;
  };
  std::vector<Proto> protos;
  // Select-column pair (value-less).
  {
    Proto p;
    p.pair.column = example.query.select_column;
    p.pair.column_span = example.select_mention;
    p.position = example.select_mention.empty() ? (1 << 20)
                                                : example.select_mention.begin;
    protos.push_back(std::move(p));
  }
  for (size_t i = 0; i < example.where_mentions.size(); ++i) {
    const data::MentionInfo& m = example.where_mentions[i];
    // A column can appear both as select and condition; conditions own
    // the value, so merge into the existing pair when present.
    Proto* target = nullptr;
    for (auto& p : protos) {
      if (p.pair.column == m.column) target = &p;
    }
    if (target == nullptr) {
      protos.push_back(Proto{MentionPair{}, 1 << 20});
      target = &protos.back();
      target->pair.column = m.column;
    }
    if (m.column_explicit && !m.column_span.empty()) {
      target->pair.column_span = m.column_span;
      target->position = std::min(target->position, m.column_span.begin);
    }
    if (!m.value_span.empty()) {
      target->pair.value_span = m.value_span;
      target->pair.value_text = text::SpanText(example.tokens, m.value_span);
      target->position = std::min(target->position, m.value_span.begin);
    }
  }
  std::sort(protos.begin(), protos.end(),
            [](const Proto& a, const Proto& b) { return a.position < b.position; });
  Annotation annotation;
  for (auto& p : protos) annotation.pairs.push_back(std::move(p.pair));
  return annotation;
}

data::Dataset AugmentDataset(const data::Dataset& base,
                             const data::Dataset& augmentation) {
  data::Dataset merged;
  merged.tables = base.tables;
  for (const auto& table : augmentation.tables) {
    if (std::find(merged.tables.begin(), merged.tables.end(), table) ==
        merged.tables.end()) {
      merged.tables.push_back(table);
    }
  }
  merged.examples = base.examples;
  merged.examples.insert(merged.examples.end(),
                         augmentation.examples.begin(),
                         augmentation.examples.end());
  return merged;
}

float TrainColumnMentionClassifier(ColumnMentionClassifier& classifier,
                                   const data::Dataset& dataset,
                                   const ModelConfig& config, int* num_pairs) {
  struct Pair {
    const data::Example* example;
    std::vector<std::string> column;
    float label;
  };
  std::vector<Pair> pairs;
  for (const data::Example& ex : dataset.examples) {
    classifier.AddVocabulary(ex.tokens);
    std::vector<bool> referenced(ex.schema().num_columns(), false);
    referenced[ex.query.select_column] = true;
    for (const auto& c : ex.query.conditions) referenced[c.column] = true;
    for (int c = 0; c < ex.schema().num_columns(); ++c) {
      const std::vector<std::string> col_tokens =
          ex.schema().column(c).DisplayTokens();
      classifier.AddVocabulary(col_tokens);
      pairs.push_back({&ex, col_tokens, referenced[c] ? 1.0f : 0.0f});
    }
  }
  if (num_pairs != nullptr) *num_pairs = static_cast<int>(pairs.size());
  if (pairs.empty()) return 0.0f;

  nn::Adam optimizer(classifier.Parameters(), config.classifier_lr);
  Rng rng(config.seed + 11);
  float final_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.classifier_epochs; ++epoch) {
    rng.Shuffle(pairs);
    float total = 0.0f;
    for (const Pair& p : pairs) {
      // Training pairs are built above and never empty; a Status here is
      // a programming error, so value() (fatal on misuse) is right.
      auto fr = classifier.Forward(p.example->tokens, p.column).value();
      Var loss = ops::BceWithLogits(fr.logit, p.label);
      optimizer.ZeroGrad();
      Backward(loss);
      nn::ClipGradNorm(optimizer.params(), config.grad_clip);
      optimizer.Step();
      total += loss->value(0);
    }
    final_epoch_loss = total / static_cast<float>(pairs.size());
    NLIDB_LOG(Debug) << "classifier epoch " << epoch << " loss "
                     << final_epoch_loss;
  }
  return final_epoch_loss;
}

float TrainValueDetector(ValueDetector& detector, const data::Dataset& dataset,
                         const schema::SchemaRegistry& registry,
                         const ModelConfig& config, int* num_pairs) {
  const text::EmbeddingProvider& provider = detector.provider();
  struct Pair {
    std::vector<float> span_emb;
    std::vector<float> stats_emb;
    float label;
    float weight;
  };
  std::vector<Pair> pairs;
  Rng rng(config.seed + 12);
  for (const data::Example& ex : dataset.examples) {
    const auto& stats = registry.StatsFor(*ex.table);
    for (const data::MentionInfo& m : ex.where_mentions) {
      if (m.value_span.empty()) continue;
      std::vector<std::string> span_tokens(
          ex.tokens.begin() + m.value_span.begin,
          ex.tokens.begin() + m.value_span.end);
      const std::vector<float> span_emb = provider.PhraseVector(span_tokens);
      // Positive, oversampled: ambiguous same-kind columns (actor vs
      // director) must stay above threshold.
      pairs.push_back({span_emb, stats[m.column].embedding, 1.0f, 2.0f});
      // Negative against a random other column.
      if (stats.size() > 1) {
        int other = static_cast<int>(rng.NextUint64(stats.size()));
        if (other == m.column) other = (other + 1) % static_cast<int>(stats.size());
        pairs.push_back({span_emb, stats[other].embedding, 0.0f, 1.0f});
      }
    }
    // Negative spans: non-value candidate spans against a random column.
    const auto candidates = detector.CandidateSpans(ex.tokens);
    for (const auto& span : candidates) {
      bool is_value = false;
      for (const auto& m : ex.where_mentions) {
        if (span.Overlaps(m.value_span)) is_value = true;
      }
      if (is_value || !rng.NextBool(0.25f)) continue;
      std::vector<std::string> span_tokens(ex.tokens.begin() + span.begin,
                                           ex.tokens.begin() + span.end);
      const int col = static_cast<int>(rng.NextUint64(stats.size()));
      pairs.push_back({provider.PhraseVector(span_tokens),
                       stats[col].embedding, 0.0f, 1.0f});
    }
  }
  if (num_pairs != nullptr) *num_pairs = static_cast<int>(pairs.size());
  if (pairs.empty()) return 0.0f;

  nn::Adam optimizer(detector.Parameters(), config.value_lr);
  float final_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.value_epochs; ++epoch) {
    rng.Shuffle(pairs);
    float total = 0.0f;
    for (const Pair& p : pairs) {
      Var logit = detector.ForwardFromVectors(p.span_emb, p.stats_emb).value();
      Var loss = ops::ScalarMul(ops::BceWithLogits(logit, p.label), p.weight);
      optimizer.ZeroGrad();
      Backward(loss);
      nn::ClipGradNorm(optimizer.params(), config.grad_clip);
      optimizer.Step();
      total += loss->value(0);
    }
    final_epoch_loss = total / static_cast<float>(pairs.size());
    NLIDB_LOG(Debug) << "value detector epoch " << epoch << " loss "
                     << final_epoch_loss;
  }
  return final_epoch_loss;
}

namespace {

/// Randomly degrades a gold annotation to mimic inference-time annotator
/// errors: a pair may lose its column span (becoming implicit), lose its
/// value span (forcing the decoder to emit the literal), or disappear.
/// Training against degraded annotations makes the decoder robust to the
/// exposure gap between gold and predicted annotations.
Annotation DegradeAnnotation(const Annotation& gold, Rng& rng) {
  Annotation out = gold;
  if (out.pairs.empty()) return out;
  const size_t victim = rng.NextUint64(out.pairs.size());
  const float r = rng.NextFloat();
  if (r < 0.45f) {
    out.pairs[victim].column_span = text::Span{};  // implicit mention
  } else if (r < 0.8f) {
    out.pairs[victim].value_span = text::Span{};
    out.pairs[victim].value_text.clear();  // value goes literal
  } else {
    out.pairs.erase(out.pairs.begin() + victim);  // pair fully missed
  }
  return out;
}

}  // namespace

float TrainSeq2Seq(TranslatorInterface& translator,
                   const data::Dataset& dataset,
                   const AnnotationOptions& options, const ModelConfig& config,
                   int* num_pairs) {
  struct Pair {
    const data::Example* example;
    Annotation gold;
    std::vector<std::string> source;
    std::vector<std::string> target;
  };
  std::vector<Pair> pairs;
  pairs.reserve(dataset.examples.size());
  for (const data::Example& ex : dataset.examples) {
    Pair p;
    p.example = &ex;
    p.gold = GoldAnnotation(ex);
    p.source = BuildAnnotatedQuestion(ex.tokens, p.gold, ex.schema(), options);
    p.target = BuildAnnotatedSql(ex.query, p.gold, ex.schema(), options);
    translator.AddVocabulary(p.source);
    translator.AddVocabulary(p.target);
    // Degraded variants use g-symbols and literal tokens; make sure the
    // vocabulary has seen them.
    translator.AddVocabulary(BuildAnnotatedSql(ex.query, Annotation{},
                                               ex.schema(), options));
    pairs.push_back(std::move(p));
  }
  if (num_pairs != nullptr) *num_pairs = static_cast<int>(pairs.size());
  if (pairs.empty()) return 0.0f;

  nn::Adam optimizer(translator.Parameters(), config.seq2seq_lr);
  Rng rng(config.seed + 13);
  float final_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.seq2seq_epochs; ++epoch) {
    rng.Shuffle(pairs);
    float total = 0.0f;
    for (const Pair& p : pairs) {
      Var loss;
      if (rng.NextBool(config.annotation_noise_probability)) {
        Annotation degraded = DegradeAnnotation(p.gold, rng);
        const auto src = BuildAnnotatedQuestion(p.example->tokens, degraded,
                                                p.example->schema(), options);
        const auto tgt = BuildAnnotatedSql(p.example->query, degraded,
                                           p.example->schema(), options);
        loss = translator.Loss(src, tgt);
      } else {
        loss = translator.Loss(p.source, p.target);
      }
      optimizer.ZeroGrad();
      Backward(loss);
      nn::ClipGradNorm(optimizer.params(), config.grad_clip);
      optimizer.Step();
      total += loss->value(0);
    }
    final_epoch_loss = total / static_cast<float>(pairs.size());
    NLIDB_LOG(Debug) << "seq2seq epoch " << epoch << " loss "
                     << final_epoch_loss;
  }
  return final_epoch_loss;
}

}  // namespace core
}  // namespace nlidb
