#ifndef NLIDB_CORE_TRANSLATOR_INTERFACE_H_
#define NLIDB_CORE_TRANSLATOR_INTERFACE_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace nlidb {
namespace core {

/// Common contract for sequence translation models (the GRU seq2seq of
/// Sec. V and the transformer ablation of Table II), so training and
/// evaluation harnesses are model-agnostic.
class TranslatorInterface : public nn::Module {
 public:
  /// Adds corpus tokens to the model vocabulary.
  virtual void AddVocabulary(const std::vector<std::string>& tokens) = 0;

  /// Teacher-forced loss for one (source, target) pair.
  virtual Var Loss(const std::vector<std::string>& source,
                   const std::vector<std::string>& target) const = 0;

  /// Decodes a translation of `source`.
  virtual std::vector<std::string> Translate(
      const std::vector<std::string>& source) const = 0;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_TRANSLATOR_INTERFACE_H_
