#include "core/seq2seq.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/annotation.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

namespace {

constexpr int kVocabBudget = 1536;

/// Deterministic unit-ish vector for structured symbol embeddings.
std::vector<float> HashedVector(const std::string& key, int dim) {
  Rng rng(Fnv1aHash(key));
  std::vector<float> v(dim);
  float norm = 0.0f;
  for (float& x : v) {
    x = rng.NextGaussian();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  if (norm > 1e-6f) {
    for (float& x : v) x = 0.5f * x / norm * std::sqrt(static_cast<float>(dim));
  }
  return v;
}

}  // namespace

void TopKByScore(std::vector<int>* ids, const float* scores, int k) {
  const auto better = [scores](int a, int b) {
    return scores[a] > scores[b] || (scores[a] == scores[b] && a < b);
  };
  if (k < static_cast<int>(ids->size())) {
    std::nth_element(ids->begin(), ids->begin() + k, ids->end(), better);
    ids->resize(k);
  }
  std::sort(ids->begin(), ids->end(), better);
}

std::vector<int> TopKScoreIndices(const float* scores, int count, int k) {
  std::vector<int> ids(count);
  for (int j = 0; j < count; ++j) ids[j] = j;
  TopKByScore(&ids, scores, k);
  return ids;
}

DecodeMode Seq2SeqTranslator::DecodeModeFromEnv() {
  const char* v = std::getenv("NLIDB_DECODE");
  if (v == nullptr || *v == '\0') return DecodeMode::kFast;
  const std::string name(v);
  if (name == "reference") return DecodeMode::kReference;
  if (name == "reference_masked") return DecodeMode::kReferenceMasked;
  if (name == "fast_unmasked") return DecodeMode::kFastUnmasked;
  if (name == "fast") return DecodeMode::kFast;
  NLIDB_LOG(Warning) << "unknown NLIDB_DECODE value '" << name
                     << "'; using the fast path";
  return DecodeMode::kFast;
}

Seq2SeqTranslator::Seq2SeqTranslator(const ModelConfig& config)
    : config_(config), symbol_rng_(config.seed + 2),
      decode_mode_(DecodeModeFromEnv()) {
  Rng rng(config_.seed + 3);
  const int d = config_.word_dim;
  const int h = config_.seq2seq_hidden;
  embedding_ = std::make_unique<nn::Embedding>(kVocabBudget, d, rng);
  encoder_ = std::make_unique<nn::StackedBiGru>(d, h, config_.seq2seq_layers, rng);
  init_proj_ = std::make_unique<nn::Linear>(2 * h, 2 * h, rng);
  decoder_cell_ = std::make_unique<nn::GruCell>(d + 2 * h, 2 * h, rng);
  attention_ = std::make_unique<nn::AdditiveAttention>(2 * h, h, rng);
  query_proj_ = std::make_unique<nn::Linear>(2 * h, h, rng, /*use_bias=*/false);
  output_proj_ = std::make_unique<nn::Linear>(4 * h, kVocabBudget, rng);
}

void Seq2SeqTranslator::AddVocabulary(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    if (vocab_.Contains(t)) continue;
    if (vocab_.size() >= kVocabBudget) break;  // budget full: map to <unk>
    const int id = vocab_.AddToken(t);
    if (id == text::Vocab::kUnk) continue;
    if (IsAnnotationSymbol(t)) {
      // Structured symbol embedding: [type vector ; index vector]
      // (Sec. VII-A2: concatenation of annotation-type and index
      // embeddings, each of half dimension).
      const int half = config_.word_dim / 2;
      std::vector<float> type_vec =
          HashedVector("sym-type:" + t.substr(0, 1), half);
      std::vector<float> index_vec =
          HashedVector("sym-index:" + t.substr(1), config_.word_dim - half);
      std::vector<float> row;
      row.reserve(config_.word_dim);
      row.insert(row.end(), type_vec.begin(), type_vec.end());
      row.insert(row.end(), index_vec.begin(), index_vec.end());
      embedding_->SetRow(id, row);
    }
  }
}

Seq2SeqTranslator::EncoderOutput Seq2SeqTranslator::Encode(
    const std::vector<std::string>& source) const {
  // Emptiness is validated by the public entry points (Loss asserts, the
  // query path returns InvalidArgument) before reaching here.
  trace::TraceSpan span("seq2seq.encode");
  span.Annotate("source_len", static_cast<int64_t>(source.size()));
  EncoderOutput out;
  out.source_ids = vocab_.Encode(source);
  Var emb = embedding_->Forward(out.source_ids);
  nn::StackedBiGru::Output enc = encoder_->Forward(emb);
  out.states = enc.states;
  out.memory_proj = attention_->ProjectMemory(enc.states);
  out.d0 = ops::Tanh(init_proj_->Forward(
      ops::ConcatCols({enc.final_forward, enc.final_backward})));
  return out;
}

Seq2SeqTranslator::StepOutput Seq2SeqTranslator::DecodeStep(
    const EncoderOutput& enc, const Var& prev_state, int prev_token) const {
  // prev_state packs [d_{i-1} ; beta_{i-1}] is NOT how the paper defines
  // it; instead the caller passes d_{i-1} and beta_{i-1} separately via
  // this overloaded contract: prev_state is [1, 4h] = [d ; beta].
  const int h2 = 2 * config_.seq2seq_hidden;
  Var d_prev = ops::SliceCols(prev_state, 0, h2);
  Var beta_prev = ops::SliceCols(prev_state, h2, h2);
  Var emb = embedding_->Forward({prev_token});  // [1, d]
  Var x = ops::ConcatCols({emb, beta_prev});
  Var d_i = decoder_cell_->Step(x, d_prev);
  Var energies = attention_->Energies(enc.memory_proj,
                                      query_proj_->Forward(d_i));
  Var weights = attention_->Weights(energies);
  Var beta_i = attention_->Context(weights, enc.states);
  Var logits = output_proj_->Forward(ops::ConcatCols({d_i, beta_i}));
  Var scores = ops::Exp(logits);
  static metrics::Counter& decode_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.decode_steps");
  static metrics::Counter& copy_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.copy_steps");
  decode_steps.Increment();
  if (config_.use_copy_mechanism) {
    // M_i[token] += exp(e_ij) for every source position j carrying it.
    copy_steps.Increment();
    Var copy_mass = ops::ScatterSumCols(ops::Exp(energies), enc.source_ids,
                                        kVocabBudget);
    scores = ops::Add(scores, copy_mass);
  }
  StepOutput out;
  out.state = ops::ConcatCols({d_i, beta_i});
  out.scores = scores;
  out.energies = energies;
  out.weights = weights;
  return out;
}

Var Seq2SeqTranslator::Loss(const std::vector<std::string>& source,
                            const std::vector<std::string>& target) const {
  // Training path: malformed corpus data is a programming error, so the
  // fatal check stays (the query path reports Status instead).
  NLIDB_CHECK(!source.empty()) << "Loss of empty source";
  EncoderOutput enc = Encode(source);
  const int h2 = 2 * config_.seq2seq_hidden;
  Var state = ops::ConcatCols({enc.d0, MakeVar(Tensor::Zeros({1, h2}))});
  std::vector<int> target_ids = vocab_.Encode(target);
  target_ids.push_back(text::Vocab::kEos);
  int prev = text::Vocab::kBos;
  Var total;
  for (int tid : target_ids) {
    StepOutput step = DecodeStep(enc, state, prev);
    Var step_loss = ops::NegLogNormalized(step.scores, tid);
    total = total ? ops::Add(total, step_loss) : step_loss;
    state = step.state;
    prev = tid;  // teacher forcing
  }
  return ops::ScalarMul(total, 1.0f / static_cast<float>(target_ids.size()));
}

StatusOr<Seq2SeqTranslator::ScoredTokens> Seq2SeqTranslator::BeamSearch(
    const std::vector<std::string>& source, int beam_width,
    const CancelContext* ctx, const DecodeGrammar* grammar) const {
  if (source.empty()) {
    return Status::InvalidArgument("cannot decode an empty source sequence");
  }
  if (beam_width > 1) {
    // Injectable exhaustion: lets tests exercise the greedy-fallback path
    // without crafting a model whose beams genuinely all die.
    NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("seq2seq/beam_exhausted"));
  }
  trace::TraceSpan span("seq2seq.translate");
  span.Annotate("beam_width", static_cast<int64_t>(beam_width));
  EncoderOutput enc = Encode(source);
  trace::TraceSpan decode_span("seq2seq.decode");
  const int h2 = 2 * config_.seq2seq_hidden;
  const int vocab_size = vocab_.size();
  static metrics::Counter& masked_tokens =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.grammar_masked_tokens");

  // Vocabulary ids copyable from this query's source (the grammar mask
  // admits literals and annotation symbols only from here).
  std::vector<uint8_t> in_source;
  if (grammar != nullptr) {
    in_source.assign(vocab_size, 0);
    for (int id : enc.source_ids) in_source[id] = 1;
  }

  struct Beam {
    Var state;
    int prev_token = text::Vocab::kBos;
    int grammar_state = DecodeGrammar::kStart;
    std::vector<std::string> tokens;
    float log_prob = 0.0f;
    bool finished = false;
  };
  Beam init;
  init.state = ops::ConcatCols({enc.d0, MakeVar(Tensor::Zeros({1, h2}))});
  std::vector<Beam> beams = {init};
  std::vector<Beam> finished;

  for (int step = 0; step < config_.max_decode_length; ++step) {
    // Decode steps dominate query latency, so the deadline is polled at
    // this granularity: an expired request stops mid-decode instead of
    // finishing up to max_decode_length steps.
    NLIDB_RETURN_IF_ERROR(CheckCancel(ctx, "seq2seq.decode"));
    std::vector<Beam> candidates;
    for (Beam& beam : beams) {
      if (beam.finished) continue;
      StepOutput so = DecodeStep(enc, beam.state, beam.prev_token);
      const float* scores = so.scores->value.data();
      const int k = std::min(beam_width, vocab_size);
      // Normalization mass and top-k selection domain: the full
      // vocabulary, or the grammar-legal subset (ascending id order in
      // both cases, so masked sums are reproducible bitwise).
      float sum = 0.0f;
      std::vector<int> top;
      if (grammar != nullptr) {
        std::vector<int> legal;
        legal.reserve(vocab_size);
        for (int j = 0; j < vocab_size; ++j) {
          if (grammar->IsLegal(beam.grammar_state, j, in_source)) {
            legal.push_back(j);
          }
        }
        masked_tokens.Increment(vocab_size - static_cast<int>(legal.size()));
        for (int j : legal) sum += scores[j];
        top = std::move(legal);
        TopKByScore(&top, scores, k);
      } else {
        for (int j = 0; j < vocab_size; ++j) sum += scores[j];
        top = TopKScoreIndices(scores, vocab_size, k);
      }
      for (const int tok : top) {
        if (grammar == nullptr &&
            (tok == text::Vocab::kPad || tok == text::Vocab::kBos)) {
          continue;
        }
        const float p = scores[tok] / (sum + 1e-9f);
        Beam next = beam;
        next.state = so.state;
        next.prev_token = tok;
        next.log_prob = beam.log_prob + std::log(p + 1e-12f);
        if (grammar != nullptr) {
          next.grammar_state = grammar->Advance(beam.grammar_state, tok);
        }
        if (tok == text::Vocab::kEos) {
          next.finished = true;
        } else if (tok == text::Vocab::kUnk) {
          // Pointer fallback: emit the source token under the attention
          // peak instead of a literal <unk>.
          const Tensor& w = so.weights->value;
          int peak = 0;
          for (int j = 1; j < w.cols(); ++j) {
            if (w(0, j) > w(0, peak)) peak = j;
          }
          next.tokens.push_back(source[peak]);
        } else {
          next.tokens.push_back(vocab_.GetToken(tok));
        }
        candidates.push_back(std::move(next));
      }
    }
    if (candidates.empty()) break;
    // stable_sort pins candidate order on log-prob ties to construction
    // order (beam order, then score rank), matching the fast path.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Beam& a, const Beam& b) {
                       return a.log_prob > b.log_prob;
                     });
    beams.clear();
    for (Beam& c : candidates) {
      if (c.finished) {
        finished.push_back(std::move(c));
      } else if (static_cast<int>(beams.size()) < beam_width) {
        beams.push_back(std::move(c));
      }
      if (static_cast<int>(beams.size()) >= beam_width &&
          static_cast<int>(finished.size()) >= beam_width) {
        break;
      }
    }
    if (beams.empty()) break;
  }
  for (Beam& b : beams) finished.push_back(std::move(b));
  if (finished.empty()) {
    return Status::Internal("beam search exhausted every hypothesis");
  }
  // Length-normalized selection.
  const Beam* best = &finished[0];
  float best_score = -1e30f;
  for (const Beam& b : finished) {
    const float denom = static_cast<float>(std::max<size_t>(1, b.tokens.size()));
    const float s = b.log_prob / denom;
    if (s > best_score) {
      best_score = s;
      best = &b;
    }
  }
  return ScoredTokens{best->tokens, best_score};
}

StatusOr<Seq2SeqTranslator::ScoredTokens> Seq2SeqTranslator::Search(
    const std::vector<std::string>& source, int beam_width,
    const CancelContext* ctx) const {
  switch (decode_mode()) {
    case DecodeMode::kReference:
      return BeamSearch(source, beam_width, ctx, /*grammar=*/nullptr);
    case DecodeMode::kReferenceMasked: {
      if (!GrammarMaskEligible()) {
        return BeamSearch(source, beam_width, ctx, /*grammar=*/nullptr);
      }
      const DecodeGrammar grammar(vocab_);
      if (!grammar.usable()) {
        return BeamSearch(source, beam_width, ctx, /*grammar=*/nullptr);
      }
      return BeamSearch(source, beam_width, ctx, &grammar);
    }
    case DecodeMode::kFastUnmasked:
      return FastBeamSearch(source, beam_width, /*use_grammar_mask=*/false,
                            ctx);
    case DecodeMode::kFast:
      return FastBeamSearch(source, beam_width, GrammarMaskEligible(), ctx);
  }
  return Status::Internal("unreachable decode mode");
}

StatusOr<Seq2SeqTranslator::Decoded> Seq2SeqTranslator::Decode(
    const std::vector<std::string>& source, const CancelContext* ctx) const {
  return DecodeWithBeamWidth(source, config_.beam_width, ctx);
}

StatusOr<Seq2SeqTranslator::Decoded> Seq2SeqTranslator::DecodeWithBeamWidth(
    const std::vector<std::string>& source, int beam_width,
    const CancelContext* ctx) const {
  static metrics::Counter& greedy_fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.greedy_fallbacks");
  static metrics::Counter& fast_path_queries =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.fast_path_queries");
  const DecodeMode mode = decode_mode();
  Decoded out;
  out.used_fast_path =
      mode == DecodeMode::kFast || mode == DecodeMode::kFastUnmasked;
  if (out.used_fast_path) fast_path_queries.Increment();
  StatusOr<ScoredTokens> beam = Search(source, beam_width, ctx);
  if (beam.ok()) {
    out.tokens = std::move(beam.value().tokens);
    out.score = beam.value().score;
    return out;
  }
  // Deadline expiry and malformed input are the caller's problem; only
  // the search itself failing degrades to greedy.
  if (beam.status().code() == StatusCode::kDeadlineExceeded ||
      beam.status().code() == StatusCode::kInvalidArgument ||
      beam_width <= 1) {
    return beam.status();
  }
  greedy_fallbacks.Increment();
  NLIDB_LOG(Warning) << "beam search failed (" << beam.status().ToString()
                     << "); retrying with greedy decode";
  StatusOr<ScoredTokens> greedy = Search(source, 1, ctx);
  if (!greedy.ok()) return greedy.status();
  out.tokens = std::move(greedy.value().tokens);
  out.score = greedy.value().score;
  out.used_greedy_fallback = true;
  return out;
}

std::vector<std::string> Seq2SeqTranslator::Translate(
    const std::vector<std::string>& source) const {
  StatusOr<Decoded> decoded = Decode(source, nullptr);
  if (!decoded.ok()) return {};
  return std::move(decoded).value().tokens;
}

std::vector<std::string> Seq2SeqTranslator::TranslateGreedy(
    const std::vector<std::string>& source) const {
  StatusOr<ScoredTokens> result = Search(source, 1, nullptr);
  if (!result.ok()) return {};
  return std::move(result.value().tokens);
}

void Seq2SeqTranslator::CollectParameters(std::vector<Var>* out) const {
  embedding_->CollectParameters(out);
  encoder_->CollectParameters(out);
  init_proj_->CollectParameters(out);
  decoder_cell_->CollectParameters(out);
  attention_->CollectParameters(out);
  query_proj_->CollectParameters(out);
  output_proj_->CollectParameters(out);
}

}  // namespace core
}  // namespace nlidb
