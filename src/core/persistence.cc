#include "core/persistence.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/failpoint.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "nn/checkpoint.h"

namespace nlidb {
namespace core {

namespace {

constexpr char kClassifierCkpt[] = "classifier.ckpt";
constexpr char kValueDetectorCkpt[] = "value_detector.ckpt";
constexpr char kTranslatorCkpt[] = "translator.ckpt";
constexpr char kClassifierVocab[] = "classifier.vocab";
constexpr char kTranslatorVocab[] = "translator.vocab";
constexpr char kManifest[] = "MANIFEST";
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kVocabMagic[] = "NLIDB-VOCAB v2 ";
// Snapshots beyond the newest two are garbage-collected on save: one
// fallback generation is enough to survive any single torn save.
constexpr int kKeepSnapshots = 2;

std::string SnapshotName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06" PRIu64, kSnapshotPrefix, id);
  return buf;
}

/// MANIFEST entries, newest first. Missing file → empty list.
std::vector<std::string> ReadManifest(const std::filesystem::path& base) {
  std::vector<std::string> entries;
  StatusOr<std::string> contents =
      io::ReadFileToString((base / kManifest).string());
  if (!contents.ok()) return entries;
  std::istringstream in(*contents);
  std::string line;
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (!line.empty()) entries.push_back(line);
  }
  return entries;
}

/// Structural validation of one snapshot directory without touching any
/// pipeline state: both vocab files parse (v2 ones against their CRC)
/// and all three checkpoints pass Checkpoint::Verify.
Status ValidateSnapshot(const std::filesystem::path& snap) {
  NLIDB_RETURN_IF_ERROR(
      LoadVocabTokens((snap / kClassifierVocab).string()).status());
  NLIDB_RETURN_IF_ERROR(
      LoadVocabTokens((snap / kTranslatorVocab).string()).status());
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Verify((snap / kClassifierCkpt).string()));
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Verify((snap / kValueDetectorCkpt).string()));
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Verify((snap / kTranslatorCkpt).string()));
  return Status::Ok();
}

/// Loads the five artifact files from `base` into `pipeline`. Callers
/// validate the snapshot first; an error here still means the vocabulary
/// may have been extended, so it is reserved for architecture mismatches
/// (which fail the whole load), never for corruption fallback.
Status LoadPipelineFrom(NlidbPipeline& pipeline,
                        const std::filesystem::path& base) {
  // Checkpoint loading rewrites the learned parameters, so it goes
  // through the explicit mutable-for-training surface.
  NlidbPipeline::TrainableComponents components =
      pipeline.MutableForTraining();
  // Vocabularies first: AddVocabulary assigns the same ids in file order
  // (and initializes embedding rows, which the checkpoints then
  // overwrite with the trained values).
  auto clf_tokens = LoadVocabTokens((base / kClassifierVocab).string());
  if (!clf_tokens.ok()) return clf_tokens.status();
  components.classifier->AddVocabulary(*clf_tokens);
  auto tr_tokens = LoadVocabTokens((base / kTranslatorVocab).string());
  if (!tr_tokens.ok()) return tr_tokens.status();
  components.translator->AddVocabulary(*tr_tokens);

  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kClassifierCkpt).string(),
      components.classifier->Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kValueDetectorCkpt).string(),
      components.value_detector->Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kTranslatorCkpt).string(),
      components.translator->Parameters()));
  return Status::Ok();
}

Status SaveArtifacts(const NlidbPipeline& pipeline,
                     const std::filesystem::path& base) {
  NLIDB_RETURN_IF_ERROR(SaveVocab(pipeline.classifier().vocab(),
                                  (base / kClassifierVocab).string()));
  NLIDB_RETURN_IF_ERROR(SaveVocab(pipeline.translator().vocab(),
                                  (base / kTranslatorVocab).string()));
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Save((base / kClassifierCkpt).string(),
                           pipeline.classifier().Parameters()));
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Save((base / kValueDetectorCkpt).string(),
                           pipeline.value_detector().Parameters()));
  NLIDB_RETURN_IF_ERROR(
      nn::Checkpoint::Save((base / kTranslatorCkpt).string(),
                           pipeline.translator().Parameters()));
  return Status::Ok();
}

}  // namespace

Status SaveVocab(const text::Vocab& vocab, const std::string& path) {
  // Ids 0..3 are the fixed specials; persist the rest in id order so the
  // loader reproduces identical ids.
  std::string payload;
  int count = 0;
  for (int id = 4; id < vocab.size(); ++id) {
    payload += vocab.GetToken(id);
    payload += '\n';
    ++count;
  }
  char header[64];
  std::snprintf(header, sizeof(header), "%scrc=%08x count=%d\n", kVocabMagic,
                io::Crc32c(payload.data(), payload.size()), count);
  return io::WriteFileAtomic(path, std::string(header) + payload,
                             "persistence");
}

StatusOr<std::vector<std::string>> LoadVocabTokens(const std::string& path) {
  StatusOr<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::string_view body = *contents;
  bool v2 = false;
  uint32_t want_crc = 0;
  int want_count = 0;
  if (StartsWith(body, kVocabMagic)) {
    const size_t eol = body.find('\n');
    if (eol == std::string_view::npos) {
      return Status::ParseError("truncated vocab header: " + path);
    }
    std::string header(body.substr(0, eol));
    StripTrailingCr(&header);
    if (std::sscanf(header.c_str() + sizeof(kVocabMagic) - 1,
                    "crc=%x count=%d", &want_crc, &want_count) != 2) {
      return Status::ParseError("malformed vocab header: " + path);
    }
    body.remove_prefix(eol + 1);
    if (io::Crc32c(body.data(), body.size()) != want_crc) {
      return Status::ParseError("corrupt vocab (CRC mismatch): " + path);
    }
    v2 = true;
  }
  std::vector<std::string> tokens;
  std::istringstream in{std::string(body)};
  std::string line;
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (!line.empty()) tokens.push_back(line);
  }
  if (v2 && static_cast<int>(tokens.size()) != want_count) {
    return Status::ParseError("vocab token count mismatch: " + path);
  }
  return tokens;
}

Status SavePipeline(const NlidbPipeline& pipeline, const std::string& dir) {
  static metrics::Counter& saves =
      metrics::MetricsRegistry::Global().GetCounter(
          "persistence.snapshot_saves");
  failpoint::InitFromEnv();
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);

  // Next snapshot id: one past the largest existing snapshot-NNNNNN,
  // whether or not the manifest still references it.
  uint64_t next_id = 1;
  for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kSnapshotPrefix)) continue;
    const uint64_t id =
        std::strtoull(name.c_str() + sizeof(kSnapshotPrefix) - 1, nullptr, 10);
    if (id >= next_id) next_id = id + 1;
  }
  const std::string snap_name = SnapshotName(next_id);
  const std::filesystem::path snap = base / snap_name;
  std::filesystem::create_directories(snap, ec);
  if (ec) return Status::IoError("cannot create directory: " + snap.string());

  NLIDB_RETURN_IF_ERROR(SaveArtifacts(pipeline, snap));

  // The snapshot is durable; dying here (the failpoint models it) leaves
  // the manifest pointing at the previous snapshot, which stays loadable.
  NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("persistence/before_manifest"));

  std::vector<std::string> entries = ReadManifest(base);
  entries.insert(entries.begin(), snap_name);
  std::string manifest;
  std::vector<std::string> expired;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i < kKeepSnapshots) {
      manifest += entries[i];
      manifest += '\n';
    } else {
      expired.push_back(entries[i]);
    }
  }
  NLIDB_RETURN_IF_ERROR(io::WriteFileAtomic((base / kManifest).string(),
                                            manifest, "persistence"));
  // GC only after the manifest no longer references the old snapshots;
  // best-effort, a crash here just leaves an unreferenced directory.
  for (const std::string& name : expired) {
    std::filesystem::remove_all(base / name, ec);
  }
  saves.Increment();
  return Status::Ok();
}

Status LoadPipeline(NlidbPipeline& pipeline, const std::string& dir) {
  static metrics::Counter& fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(
          "persistence.fallback_loads");
  const std::filesystem::path base(dir);
  if (!std::filesystem::exists(base / kManifest)) {
    // Legacy flat layout: the five files directly in `dir`.
    return LoadPipelineFrom(pipeline, base);
  }
  const std::vector<std::string> entries = ReadManifest(base);
  if (entries.empty()) {
    return Status::IoError("empty snapshot manifest in " + dir);
  }
  Status last_error = Status::Ok();
  for (size_t i = 0; i < entries.size(); ++i) {
    const std::filesystem::path snap = base / entries[i];
    // Validate before mutating: a snapshot that fails integrity checks
    // is skipped without having touched vocabularies or weights.
    Status valid = ValidateSnapshot(snap);
    if (!valid.ok()) {
      NLIDB_LOG(Warning) << "snapshot " << snap.string()
                         << " failed validation (" << valid.ToString()
                         << "), falling back";
      fallbacks.Increment();
      last_error = std::move(valid);
      continue;
    }
    if (i > 0) {
      NLIDB_LOG(Warning) << "loading fallback snapshot " << snap.string();
    }
    return LoadPipelineFrom(pipeline, snap);
  }
  return Status::IoError("no complete snapshot in " + dir + " (last error: " +
                         last_error.ToString() + ")");
}

}  // namespace core
}  // namespace nlidb
