#include "core/persistence.h"

#include <filesystem>
#include <fstream>

#include "nn/checkpoint.h"

namespace nlidb {
namespace core {

namespace {
constexpr char kClassifierCkpt[] = "classifier.ckpt";
constexpr char kValueDetectorCkpt[] = "value_detector.ckpt";
constexpr char kTranslatorCkpt[] = "translator.ckpt";
constexpr char kClassifierVocab[] = "classifier.vocab";
constexpr char kTranslatorVocab[] = "translator.vocab";
}  // namespace

Status SaveVocab(const text::Vocab& vocab, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  // Ids 0..3 are the fixed specials; persist the rest in id order so the
  // loader reproduces identical ids.
  for (int id = 4; id < vocab.size(); ++id) {
    out << vocab.GetToken(id) << "\n";
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<std::string>> LoadVocabTokens(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) tokens.push_back(line);
  }
  return tokens;
}

Status SavePipeline(const NlidbPipeline& pipeline, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);
  const std::filesystem::path base(dir);
  NLIDB_RETURN_IF_ERROR(SaveVocab(pipeline.classifier().vocab(),
                                  (base / kClassifierVocab).string()));
  NLIDB_RETURN_IF_ERROR(SaveVocab(pipeline.translator().vocab(),
                                  (base / kTranslatorVocab).string()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Save(
      (base / kClassifierCkpt).string(),
      pipeline.classifier().Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Save(
      (base / kValueDetectorCkpt).string(),
      pipeline.value_detector().Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Save(
      (base / kTranslatorCkpt).string(),
      pipeline.translator().Parameters()));
  return Status::Ok();
}

Status LoadPipeline(NlidbPipeline& pipeline, const std::string& dir) {
  const std::filesystem::path base(dir);
  // Checkpoint loading rewrites the learned parameters, so it goes
  // through the explicit mutable-for-training surface.
  NlidbPipeline::TrainableComponents components =
      pipeline.MutableForTraining();
  // Vocabularies first: AddVocabulary assigns the same ids in file order
  // (and initializes embedding rows, which the checkpoints then
  // overwrite with the trained values).
  auto clf_tokens = LoadVocabTokens((base / kClassifierVocab).string());
  if (!clf_tokens.ok()) return clf_tokens.status();
  components.classifier->AddVocabulary(*clf_tokens);
  auto tr_tokens = LoadVocabTokens((base / kTranslatorVocab).string());
  if (!tr_tokens.ok()) return tr_tokens.status();
  components.translator->AddVocabulary(*tr_tokens);

  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kClassifierCkpt).string(),
      components.classifier->Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kValueDetectorCkpt).string(),
      components.value_detector->Parameters()));
  NLIDB_RETURN_IF_ERROR(nn::Checkpoint::Load(
      (base / kTranslatorCkpt).string(),
      components.translator->Parameters()));
  return Status::Ok();
}

}  // namespace core
}  // namespace nlidb
