#ifndef NLIDB_CORE_PIPELINE_H_
#define NLIDB_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "sql/executor.h"

namespace nlidb {
namespace core {

/// Input to `NlidbPipeline::Query`. Exactly one of `question` /
/// `tokens` should be set; a non-empty `tokens` wins and skips the
/// tokenizer stage.
struct QueryRequest {
  const sql::Table* table = nullptr;  // required
  std::string question;               // raw NL question (tokenized here)
  std::vector<std::string> tokens;    // pre-tokenized question

  /// Run the recovered SQL against `table` and fill `QueryResult::rows`.
  bool execute = true;

  /// Fill `QueryResult::stages` with per-stage wall times. Cheap (a
  /// handful of clock reads per request) but off-able for benchmarks
  /// that measure the pipeline itself.
  bool collect_timings = true;
};

/// Wall time of one pipeline stage, forming a per-request tree rooted
/// at the "query" node. Mirrors the TraceSpan tree a sink would see,
/// but returned inline with the result so callers need no sink.
struct StageTiming {
  std::string name;
  uint64_t wall_ns = 0;
  std::vector<StageTiming> children;

  /// The direct child named `child_name`, or nullptr.
  const StageTiming* Child(const std::string& child_name) const;
};

/// Everything one pipeline pass produces. Intermediate artifacts
/// (annotation, q^a, s^a) are first-class: per-stage inspection is how
/// Seq2SQL-class systems are debugged and evaluated, so the API keeps
/// them instead of discarding them on the way to the SQL.
struct QueryResult {
  std::vector<std::string> tokens;              // post-tokenizer question
  Annotation annotation;                        // step 1 output
  std::vector<std::string> annotated_question;  // q^a fed to the seq2seq
  std::vector<std::string> annotated_sql;       // decoded s^a

  /// Step 3: recovered SQL. Unset iff `recovery_status` is an error
  /// (the decoder emitted an unrecoverable token stream).
  std::optional<sql::SelectQuery> query;
  Status recovery_status = Status::Ok();

  /// Execution result; unset when `request.execute` was false, recovery
  /// failed, or execution itself failed (see `execution_status`).
  std::optional<std::vector<sql::Value>> rows;
  Status execution_status = Status::Ok();

  /// Per-stage wall times ("query" root; children: tokenize, annotate,
  /// build_qa, translate, recover, execute). Empty when
  /// `request.collect_timings` was false.
  StageTiming stages;
};

/// The end-to-end transfer-learnable NLIDB (the paper's full system):
///
///   question --(1. annotate: classifier + adversarial locator + value
///   detector + dependency resolver)--> q^a --(2. seq2seq with copy)-->
///   s^a --(3. deterministic recovery)--> SQL --(4. executor)--> rows.
///
/// Train once on a corpus; `Query` then works against any table,
/// including tables from domains never seen in training (the
/// transfer-learnability claim evaluated in Table IV).
class NlidbPipeline {
 public:
  NlidbPipeline(const ModelConfig& config,
                std::shared_ptr<text::EmbeddingProvider> provider);

  NlidbPipeline(const NlidbPipeline&) = delete;
  NlidbPipeline& operator=(const NlidbPipeline&) = delete;

  /// Trains all three learned components on `train`.
  TrainReport Train(const data::Dataset& train);

  /// The pipeline entry point. Returns an error only for an invalid
  /// request (no table, empty question, zero-column table); downstream
  /// model failures (unrecoverable s^a, execution errors) come back
  /// inside the result so callers still see every intermediate stage.
  StatusOr<QueryResult> Query(const QueryRequest& request) const;

  /// Step 1 only: q -> annotation. Fails on empty input or a
  /// zero-column table instead of annotating garbage.
  StatusOr<Annotation> Annotate(const std::vector<std::string>& tokens,
                                const sql::Table& table) const;

  /// Deprecated pre-Query surface, kept for one PR as thin wrappers.
  /// Each discards the intermediate stages that `Query` returns.
  [[deprecated("use Query(QueryRequest) instead")]]
  StatusOr<sql::SelectQuery> Translate(const std::string& question,
                                       const sql::Table& table) const;
  [[deprecated("use Query(QueryRequest) instead")]]
  StatusOr<sql::SelectQuery> TranslateTokens(
      const std::vector<std::string>& tokens, const sql::Table& table) const;
  [[deprecated("use Query(QueryRequest) instead")]]
  std::vector<std::string> TranslateToAnnotatedSql(
      const std::vector<std::string>& tokens, const sql::Table& table,
      Annotation* annotation_out) const;

  const ModelConfig& config() const { return config_; }
  AnnotationOptions annotation_options() const;
  const text::EmbeddingProvider& provider() const { return *provider_; }
  const ColumnMentionClassifier& classifier() const { return *classifier_; }
  const ValueDetector& value_detector() const { return *value_detector_; }
  const Seq2SeqTranslator& translator() const { return *translator_; }
  const Annotator& annotator() const { return *annotator_; }
  TableStatsCache& stats_cache() const { return *stats_cache_; }

  /// Mutable access to the learned components, for training and
  /// checkpoint loading only. Inference paths use the const accessors;
  /// the loud name makes any other use visible in review.
  struct TrainableComponents {
    ColumnMentionClassifier* classifier;
    ValueDetector* value_detector;
    Seq2SeqTranslator* translator;
  };
  TrainableComponents MutableForTraining();

  /// Optional database-specific NL metadata used at annotation time.
  void set_metadata(const NlMetadata* metadata) { metadata_ = metadata; }

 private:
  ModelConfig config_;
  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<ColumnMentionClassifier> classifier_;
  std::unique_ptr<ValueDetector> value_detector_;
  std::unique_ptr<Seq2SeqTranslator> translator_;
  std::unique_ptr<Annotator> annotator_;
  std::unique_ptr<TableStatsCache> stats_cache_;
  const NlMetadata* metadata_ = nullptr;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_PIPELINE_H_
