#ifndef NLIDB_CORE_PIPELINE_H_
#define NLIDB_CORE_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "schema/registry.h"
#include "schema/schema_ref.h"
#include "sql/executor.h"

namespace nlidb {
namespace core {

struct QueryResult;

/// Re-exported so callers constructing requests write
/// `core::SchemaRef::Name("films")` without reaching into the schema
/// namespace.
using SchemaRef = ::nlidb::schema::SchemaRef;

/// Input to `NlidbPipeline::Query`. Exactly one of `question` /
/// `tokens` should be set; a non-empty `tokens` wins and skips the
/// tokenizer stage.
struct QueryRequest {
  /// Which table the question runs against, resolved through the
  /// pipeline's schema registry: an ad-hoc `SchemaRef::Table(&t)`, a
  /// registered `SchemaRef::Name("films")` / `SchemaRef::Id(id)`, or
  /// `SchemaRef::Route()` to let the registry's router pick the table
  /// from the question itself.
  schema::SchemaRef schema_ref;

  std::string question;             // raw NL question (tokenized here)
  std::vector<std::string> tokens;  // pre-tokenized question

  /// Run the recovered SQL against `table` and fill `QueryResult::rows`.
  bool execute = true;

  /// Fill `QueryResult::stages` with per-stage wall times. Cheap (a
  /// handful of clock reads per request) but off-able for benchmarks
  /// that measure the pipeline itself.
  bool collect_timings = true;

  /// Optional deadline. Polled at stage boundaries and inside the
  /// expensive inner loops (decode steps, value-span scan, influence
  /// fan-out); expiry makes Query return DeadlineExceeded instead of
  /// running to completion — never an abort.
  Deadline deadline;

  /// Optional external cancellation; flip from any thread to stop the
  /// query at its next poll point (same return as an expired deadline).
  const std::atomic<bool>* cancel = nullptr;

  /// When set and Query fails mid-flight (deadline, cancellation, stage
  /// error), receives everything produced so far — in particular the
  /// completed entries of `QueryResult::stages` — so callers can see
  /// where the time went even for a query that did not finish.
  QueryResult* partial_result = nullptr;

  /// When set, the translate stage calls this instead of
  /// `translator().Decode(q^a, ctx)`. The serving engine routes decoding
  /// through its cross-request batcher this way without the pipeline
  /// knowing about scheduling; the override must return exactly what the
  /// translator would (the batcher's bitwise-equivalence contract).
  std::function<StatusOr<Seq2SeqTranslator::Decoded>(
      const std::vector<std::string>&, const CancelContext*)>
      translate_override;
};

/// Wall time of one pipeline stage, forming a per-request tree rooted
/// at the "query" node. Mirrors the TraceSpan tree a sink would see,
/// but returned inline with the result so callers need no sink.
struct StageTiming {
  std::string name;
  uint64_t wall_ns = 0;
  std::vector<StageTiming> children;

  /// The direct child named `child_name`, or nullptr.
  const StageTiming* Child(const std::string& child_name) const;
};

/// Everything one pipeline pass produces. Intermediate artifacts
/// (annotation, q^a, s^a) are first-class: per-stage inspection is how
/// Seq2SQL-class systems are debugged and evaluated, so the API keeps
/// them instead of discarding them on the way to the SQL.
struct QueryResult {
  std::vector<std::string> tokens;              // post-tokenizer question

  /// Which table the request resolved to. `table_id` is the registry
  /// handle (kInvalidTableId for ad-hoc unregistered tables); for
  /// routed requests `routing` carries the ranked candidate list the
  /// winner was drawn from, so callers can surface alternatives.
  std::string table_name;
  schema::TableId table_id = schema::kInvalidTableId;
  std::vector<schema::RouteCandidate> routing;

  Annotation annotation;                        // step 1 output
  std::vector<std::string> annotated_question;  // q^a fed to the seq2seq
  std::vector<std::string> annotated_sql;       // decoded s^a

  /// Length-normalized log-probability of the winning decode hypothesis.
  /// Exposed so differential harnesses can compare serving and
  /// sequential paths bit-for-bit, not just token-for-token.
  float translate_score = 0.0f;

  /// Step 3: recovered SQL. Unset iff `recovery_status` is an error
  /// (the decoder emitted an unrecoverable token stream).
  std::optional<sql::SelectQuery> query;
  Status recovery_status = Status::Ok();

  /// Execution result; unset when `request.execute` was false, recovery
  /// failed, or execution itself failed (see `execution_status`).
  std::optional<std::vector<sql::Value>> rows;
  Status execution_status = Status::Ok();

  /// Graceful-degradation flags (in-band: a degraded answer is still an
  /// answer, but callers can tell it was produced by a fallback path).
  /// Dependency parse failed -> mention resolution used linear token
  /// distance; beam search exhausted -> the greedy decode produced s^a.
  bool degraded_linear_resolution = false;
  bool degraded_greedy_decode = false;

  /// Per-stage wall times ("query" root; children: tokenize, resolve,
  /// annotate, build_qa, translate, recover, execute). Empty when
  /// `request.collect_timings` was false.
  StageTiming stages;
};

/// The end-to-end transfer-learnable NLIDB (the paper's full system):
///
///   question --(1. annotate: classifier + adversarial locator + value
///   detector + dependency resolver)--> q^a --(2. seq2seq with copy)-->
///   s^a --(3. deterministic recovery)--> SQL --(4. executor)--> rows.
///
/// Train once on a corpus; `Query` then works against any table,
/// including tables from domains never seen in training (the
/// transfer-learnability claim evaluated in Table IV).
class NlidbPipeline {
 public:
  NlidbPipeline(const ModelConfig& config,
                std::shared_ptr<text::EmbeddingProvider> provider);

  NlidbPipeline(const NlidbPipeline&) = delete;
  NlidbPipeline& operator=(const NlidbPipeline&) = delete;

  /// Trains all three learned components on `train`.
  TrainReport Train(const data::Dataset& train);

  /// Trains on `train` plus an augmentation corpus (adversarial
  /// mutants, hard buckets from attack triage). Equivalent to Train on
  /// AugmentDataset(train, augmentation); the overload is the hardening
  /// loop's entry point.
  TrainReport Train(const data::Dataset& train,
                    const data::Dataset& augmentation);

  /// The pipeline entry point. Returns an error for an invalid request
  /// (unresolvable schema_ref, empty question, zero-column table) or
  /// when the request's deadline expires / it is cancelled
  /// (DeadlineExceeded; the stages
  /// completed so far land in `request.partial_result` when set).
  /// Downstream model failures (unrecoverable s^a, execution errors)
  /// come back inside the result so callers still see every intermediate
  /// stage, and degraded fallback paths are flagged on the result rather
  /// than erroring.
  StatusOr<QueryResult> Query(const QueryRequest& request) const;

  /// Step 1 only: q -> annotation. Fails on empty input or a
  /// zero-column table instead of annotating garbage.
  StatusOr<Annotation> Annotate(const std::vector<std::string>& tokens,
                                const sql::Table& table) const;

  const ModelConfig& config() const { return config_; }
  AnnotationOptions annotation_options() const;
  const text::EmbeddingProvider& provider() const { return *provider_; }
  const ColumnMentionClassifier& classifier() const { return *classifier_; }
  const ValueDetector& value_detector() const { return *value_detector_; }
  const Seq2SeqTranslator& translator() const { return *translator_; }
  const Annotator& annotator() const { return *annotator_; }

  /// The schema-resolution subsystem: registered tables, the content-
  /// keyed column-statistics store (the replacement for the retired
  /// mutable `stats_cache()` accessor), routing and shortlisting. The
  /// const accessor is all inference needs; `mutable_registry()` exists
  /// for setup (registering tables, loading a persisted store).
  const schema::SchemaRegistry& registry() const { return *registry_; }
  schema::SchemaRegistry& mutable_registry() { return *registry_; }

  /// Mutable access to the learned components, for training and
  /// checkpoint loading only. Inference paths use the const accessors;
  /// the loud name makes any other use visible in review.
  struct TrainableComponents {
    ColumnMentionClassifier* classifier;
    ValueDetector* value_detector;
    Seq2SeqTranslator* translator;
  };
  TrainableComponents MutableForTraining();

  /// Optional database-specific NL metadata used at annotation time.
  void set_metadata(const NlMetadata* metadata) { metadata_ = metadata; }

 private:
  /// Shortlist for the current mode/table width, or nullptr for a full
  /// scan; the returned pointer aliases `storage`.
  const std::vector<int>* MaybeShortlist(const std::vector<std::string>& tokens,
                                         const sql::Table& table,
                                         std::vector<int>& storage) const;

  ModelConfig config_;
  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<ColumnMentionClassifier> classifier_;
  std::unique_ptr<ValueDetector> value_detector_;
  std::unique_ptr<Seq2SeqTranslator> translator_;
  std::unique_ptr<Annotator> annotator_;
  std::unique_ptr<schema::SchemaRegistry> registry_;
  const NlMetadata* metadata_ = nullptr;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_PIPELINE_H_
