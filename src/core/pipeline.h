#ifndef NLIDB_CORE_PIPELINE_H_
#define NLIDB_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/annotator.h"
#include "core/trainer.h"

namespace nlidb {
namespace core {

/// The end-to-end transfer-learnable NLIDB (the paper's full system):
///
///   question --(1. annotate: classifier + adversarial locator + value
///   detector + dependency resolver)--> q^a --(2. seq2seq with copy)-->
///   s^a --(3. deterministic recovery)--> SQL.
///
/// Train once on a corpus; `Translate` then works against any table,
/// including tables from domains never seen in training (the
/// transfer-learnability claim evaluated in Table IV).
class NlidbPipeline {
 public:
  NlidbPipeline(const ModelConfig& config,
                std::shared_ptr<text::EmbeddingProvider> provider);

  NlidbPipeline(const NlidbPipeline&) = delete;
  NlidbPipeline& operator=(const NlidbPipeline&) = delete;

  /// Trains all three learned components on `train`.
  TrainReport Train(const data::Dataset& train);

  /// Full pipeline on a raw question string.
  StatusOr<sql::SelectQuery> Translate(const std::string& question,
                                       const sql::Table& table) const;

  /// Full pipeline on pre-tokenized input.
  StatusOr<sql::SelectQuery> TranslateTokens(
      const std::vector<std::string>& tokens, const sql::Table& table) const;

  /// Steps 1-2 only: returns the decoded annotated SQL tokens s^a and the
  /// annotation used (for Table III's before/after-recovery comparison).
  std::vector<std::string> TranslateToAnnotatedSql(
      const std::vector<std::string>& tokens, const sql::Table& table,
      Annotation* annotation_out) const;

  /// Step 1 only.
  Annotation Annotate(const std::vector<std::string>& tokens,
                      const sql::Table& table) const;

  const ModelConfig& config() const { return config_; }
  AnnotationOptions annotation_options() const;
  const text::EmbeddingProvider& provider() const { return *provider_; }
  ColumnMentionClassifier& classifier() { return *classifier_; }
  const ColumnMentionClassifier& classifier() const { return *classifier_; }
  ValueDetector& value_detector() { return *value_detector_; }
  const ValueDetector& value_detector() const { return *value_detector_; }
  Seq2SeqTranslator& translator() { return *translator_; }
  const Seq2SeqTranslator& translator() const { return *translator_; }
  const Annotator& annotator() const { return *annotator_; }
  TableStatsCache& stats_cache() const { return *stats_cache_; }

  /// Optional database-specific NL metadata used at annotation time.
  void set_metadata(const NlMetadata* metadata) { metadata_ = metadata; }

 private:
  ModelConfig config_;
  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<ColumnMentionClassifier> classifier_;
  std::unique_ptr<ValueDetector> value_detector_;
  std::unique_ptr<Seq2SeqTranslator> translator_;
  std::unique_ptr<Annotator> annotator_;
  std::unique_ptr<TableStatsCache> stats_cache_;
  const NlMetadata* metadata_ = nullptr;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_PIPELINE_H_
