#ifndef NLIDB_CORE_MENTION_RESOLVER_H_
#define NLIDB_CORE_MENTION_RESOLVER_H_

#include <vector>

#include "core/annotation.h"
#include "core/value_detector.h"
#include "text/dependency.h"

namespace nlidb {
namespace core {

/// A detected column mention prior to pairing.
struct ColumnMentionCandidate {
  int column = -1;
  text::Span span;      // empty for "mentioned but not locatable"
  float confidence = 0.0f;
};

/// Mention resolution (Sec. IV-E): pairs each detected value span with a
/// column using structural closeness in the question's dependency tree —
/// "a value is often the closest child node of the paired column". Among
/// a value's admissible columns (those whose value-detector score passed,
/// intersected with detected column mentions where possible), the column
/// whose mention is closest in the tree wins; ties break by detector
/// score.
class MentionResolver {
 public:
  /// Pairing strategy. kDependencyTree is the paper's method; kScoreOnly
  /// ignores structure and assigns each value to its highest-scoring
  /// admissible column (ablation baseline showing what the tree buys).
  enum class Strategy { kDependencyTree, kScoreOnly };

  explicit MentionResolver(Strategy strategy = Strategy::kDependencyTree)
      : strategy_(strategy) {}

  /// Resolves mentions into ordered annotation pairs. Pairs are ordered
  /// by first appearance in the question (column span start, or value
  /// span start for implicit mentions), which fixes the c_i/v_i indexing.
  ///
  /// Graceful degradation: when the dependency parse fails (failpoint
  /// "resolver/dependency_parse", or a parser exception), resolution
  /// falls back to linear token distance instead of failing the query;
  /// `used_linear_fallback` (optional) reports that the degraded path
  /// ran, and `resolver.linear_fallbacks` counts it.
  Annotation Resolve(const std::vector<std::string>& tokens,
                     const std::vector<ColumnMentionCandidate>& columns,
                     const std::vector<ValueDetector::Detection>& values,
                     bool* used_linear_fallback = nullptr) const;

 private:
  Strategy strategy_;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_MENTION_RESOLVER_H_
