#include "core/mention_resolver.h"

#include <algorithm>
#include <exception>
#include <optional>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nlidb {
namespace core {

namespace {

constexpr int kImplicitDistancePenalty = 8;

struct ResolvedValue {
  text::Span span;
  int column = -1;
  float score = 0.0f;
};

/// Token distance between two spans: the degraded stand-in for the
/// dependency tree's structural distance when the parse is unavailable.
int LinearSpanDistance(const text::Span& a, const text::Span& b) {
  if (a.Overlaps(b)) return 0;
  return a.begin >= b.end ? a.begin - b.end + 1 : b.begin - a.end + 1;
}

}  // namespace

Annotation MentionResolver::Resolve(
    const std::vector<std::string>& tokens,
    const std::vector<ColumnMentionCandidate>& columns,
    const std::vector<ValueDetector::Detection>& values,
    bool* used_linear_fallback) const {
  static metrics::Counter& linear_fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(
          "resolver.linear_fallbacks");
  if (used_linear_fallback != nullptr) *used_linear_fallback = false;
  std::optional<text::DependencyTree> tree;
  if (NLIDB_FAILPOINT("resolver/dependency_parse").ok()) {
    try {
      tree.emplace(text::DependencyTree::Parse(tokens));
    } catch (const std::exception& e) {
      NLIDB_LOG(Warning) << "dependency parse failed (" << e.what()
                         << "); using linear-distance resolution";
    }
  }
  if (!tree.has_value()) {
    linear_fallbacks.Increment();
    if (used_linear_fallback != nullptr) *used_linear_fallback = true;
  }

  // 1. Select non-overlapping value spans, preferring longer spans (a
  // multi-word entity beats its sub-spans) and higher detector scores.
  std::vector<ValueDetector::Detection> ordered = values;
  std::sort(ordered.begin(), ordered.end(),
            [](const ValueDetector::Detection& a,
               const ValueDetector::Detection& b) {
              if (a.span.length() != b.span.length()) {
                return a.span.length() > b.span.length();
              }
              const float sa = a.column_scores.empty() ? 0 : a.column_scores[0].second;
              const float sb = b.column_scores.empty() ? 0 : b.column_scores[0].second;
              return sa > sb;
            });
  std::vector<const ValueDetector::Detection*> accepted;
  auto overlaps_any = [&](const text::Span& span) {
    for (const auto* d : accepted) {
      if (d->span.Overlaps(span)) return true;
    }
    for (const auto& c : columns) {
      if (!c.span.empty() && c.span.Overlaps(span)) return true;
    }
    return false;
  };
  for (const auto& det : ordered) {
    if (!overlaps_any(det.span)) accepted.push_back(&det);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const auto* a, const auto* b) {
              return a->span.begin < b->span.begin;
            });

  // 2. Assign each value span to a column by structural closeness.
  std::vector<ResolvedValue> resolved;
  std::vector<bool> column_taken(columns.size(), false);
  std::vector<bool> schema_col_taken_by_value(512, false);
  for (const auto* det : accepted) {
    int best_col = -1;
    float best_score = 0.0f;
    int best_dist = 1 << 20;
    for (const auto& [col, score] : det->column_scores) {
      if (col < 512 && schema_col_taken_by_value[col]) continue;
      // Distance to an explicit mention of this column if one exists,
      // else a fixed implicit penalty (favoring explicit pairings).
      // Under the kScoreOnly ablation, structure is ignored entirely.
      int dist = 0;
      if (strategy_ == Strategy::kDependencyTree) {
        dist = kImplicitDistancePenalty;
        for (const auto& cm : columns) {
          if (cm.column == col && !cm.span.empty()) {
            dist = tree.has_value()
                       ? tree->SpanDistance(det->span, cm.span)
                       : LinearSpanDistance(det->span, cm.span);
            break;
          }
        }
      }
      if (dist < best_dist ||
          (dist == best_dist && score > best_score)) {
        best_dist = dist;
        best_col = col;
        best_score = score;
      }
    }
    if (best_col < 0) continue;
    if (best_col < 512) schema_col_taken_by_value[best_col] = true;
    resolved.push_back({det->span, best_col, best_score});
  }

  // 3. Build pairs: every detected column mention contributes a pair;
  // values attach to their column's pair, or create an implicit pair.
  struct ProtoPair {
    MentionPair pair;
    int position = 1 << 20;  // ordering key
  };
  std::vector<ProtoPair> protos;
  for (size_t i = 0; i < columns.size(); ++i) {
    const auto& cm = columns[i];
    if (cm.column < 0) continue;
    // Skip duplicate mentions of the same column (keep most confident).
    bool dup = false;
    for (auto& p : protos) {
      if (p.pair.column == cm.column) dup = true;
    }
    if (dup) continue;
    ProtoPair proto;
    proto.pair.column = cm.column;
    proto.pair.column_span = cm.span;
    proto.position = cm.span.empty() ? (1 << 20) : cm.span.begin;
    protos.push_back(std::move(proto));
    (void)column_taken[i];
  }
  for (const auto& rv : resolved) {
    ProtoPair* target = nullptr;
    for (auto& p : protos) {
      if (p.pair.column == rv.column) {
        target = &p;
        break;
      }
    }
    if (target == nullptr) {
      ProtoPair proto;
      proto.pair.column = rv.column;
      protos.push_back(std::move(proto));
      target = &protos.back();
    }
    if (!target->pair.value_span.empty()) continue;  // already has a value
    target->pair.value_span = rv.span;
    target->pair.value_text = text::SpanText(tokens, rv.span);
    target->position = std::min(target->position, rv.span.begin);
  }

  std::sort(protos.begin(), protos.end(),
            [](const ProtoPair& a, const ProtoPair& b) {
              return a.position < b.position;
            });
  Annotation annotation;
  for (auto& p : protos) annotation.pairs.push_back(std::move(p.pair));
  return annotation;
}

}  // namespace core
}  // namespace nlidb
