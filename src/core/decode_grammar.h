#ifndef NLIDB_CORE_DECODE_GRAMMAR_H_
#define NLIDB_CORE_DECODE_GRAMMAR_H_

#include <cstdint>
#include <vector>

#include "text/vocab.h"

namespace nlidb {
namespace core {

/// Next-token legality for decoding the annotated-SQL grammar s^a.
///
/// The decoder's output language is tiny and near-regular (the shape
/// RecoverSql accepts):
///
///   SELECT [AGG] col [WHERE col op val (AND col op val)*] <eos>
///   col ::= c_i | g_j | single literal column token | <unk>
///   val ::= v_i | literal token run | <unk>
///
/// This class classifies every vocabulary id once per query and exposes a
/// deterministic automaton over decode states, so beam search can restrict
/// the softmax/copy/top-k loop to the legal symbol set instead of the full
/// vocabulary. Literal tokens and annotation symbols are legal only when
/// they occur in the source sequence q^a (they are copied, never invented);
/// structural tokens (SELECT/WHERE/AND, aggregates, operators) are legal by
/// state alone. <unk> is legal wherever a literal may appear — it resolves
/// through the pointer fallback to a source token.
///
/// The mask is a *restriction*, not a rescoring: masked decoding normalizes
/// scores over the legal set, so masked and unmasked search can pick
/// different hypotheses. The fast decode path and the reference masked
/// path share this class, which is what makes them bitwise-comparable in
/// the differential fuzz harness.
class DecodeGrammar {
 public:
  /// Decode states. kFree is the escape hatch: any transition the grammar
  /// does not define lands there and every non-special token becomes
  /// legal, so an inconsistent history can never dead-end the beam.
  enum State : int {
    kStart = 0,      // expect SELECT
    kAfterSelect,    // expect AGG or the select column
    kAfterAgg,       // expect the select column
    kAfterSelCol,    // expect WHERE or <eos>
    kCondCol,        // expect a condition column
    kCondOp,         // expect =, >, <
    kCondVal,        // expect v_i or the first literal value token
    kAfterValSym,    // expect AND or <eos>
    kValLit,         // inside a literal value run: literal, AND or <eos>
    kDone,           // expect <eos>
    kFree,           // grammar lost track: everything non-special legal
    kNumStates
  };

  /// Token classes over the vocabulary.
  enum class TokenClass : uint8_t {
    kSelect,
    kWhere,
    kAnd,
    kAgg,        // MAX MIN COUNT SUM AVG
    kOp,         // = > <
    kColSym,     // c_i
    kValSym,     // v_i
    kHeaderSym,  // g_j
    kEos,
    kUnk,
    kSpecial,    // <pad>, <s>: never legal
    kLiteral
  };

  /// Classifies every id of `vocab` (token strings are read once here;
  /// the per-step mask never touches strings).
  explicit DecodeGrammar(const text::Vocab& vocab);

  /// False when the vocabulary lacks the SELECT token — then no legal
  /// sentence exists and callers must decode unmasked.
  bool usable() const { return usable_; }

  static int Start() { return kStart; }

  /// The state after emitting `token_id` in `state`.
  int Advance(int state, int token_id) const;

  /// True when `token_id` may follow in `state`, for a query whose source
  /// vocabulary ids are flagged in `in_source` (indexed by vocab id).
  bool IsLegal(int state, int token_id,
               const std::vector<uint8_t>& in_source) const;

  TokenClass Classify(int token_id) const {
    return classes_[static_cast<size_t>(token_id)];
  }

 private:
  std::vector<TokenClass> classes_;  // by vocab id
  bool usable_ = false;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_DECODE_GRAMMAR_H_
