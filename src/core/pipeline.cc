#include "core/pipeline.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {

NlidbPipeline::NlidbPipeline(const ModelConfig& config,
                             std::shared_ptr<text::EmbeddingProvider> provider)
    : config_(config), provider_(std::move(provider)) {
  NLIDB_CHECK(provider_ != nullptr) << "pipeline needs an embedding provider";
  // Size the shared pool once per process; 1 forces every substrate
  // consumer (GEMM kernels, influence fan-out) onto the serial path.
  ThreadPool::SetGlobalParallelism(config_.ResolveNumThreads());
  classifier_ = std::make_unique<ColumnMentionClassifier>(config_, *provider_);
  value_detector_ = std::make_unique<ValueDetector>(config_, *provider_);
  translator_ = std::make_unique<Seq2SeqTranslator>(config_);
  annotator_ = std::make_unique<Annotator>(config_, *provider_,
                                           classifier_.get(),
                                           value_detector_.get());
  stats_cache_ = std::make_unique<TableStatsCache>(*provider_);
}

AnnotationOptions NlidbPipeline::annotation_options() const {
  AnnotationOptions options;
  options.column_name_appending = config_.column_name_appending;
  options.table_header_encoding = config_.table_header_encoding;
  return options;
}

TrainReport NlidbPipeline::Train(const data::Dataset& train) {
  TrainReport report;
  NLIDB_LOG(Info) << "training column mention classifier on "
                  << train.examples.size() << " examples";
  report.classifier_loss = TrainColumnMentionClassifier(
      *classifier_, train, config_, &report.classifier_pairs);
  NLIDB_LOG(Info) << "training value detector";
  report.value_loss = TrainValueDetector(*value_detector_, train,
                                         *stats_cache_, config_,
                                         &report.value_pairs);
  NLIDB_LOG(Info) << "training seq2seq translator";
  report.seq2seq_loss = TrainSeq2Seq(*translator_, train,
                                     annotation_options(), config_,
                                     &report.seq2seq_pairs);
  return report;
}

Annotation NlidbPipeline::Annotate(const std::vector<std::string>& tokens,
                                   const sql::Table& table) const {
  const auto& stats = stats_cache_->For(table);
  return annotator_->Annotate(tokens, table, stats, metadata_);
}

std::vector<std::string> NlidbPipeline::TranslateToAnnotatedSql(
    const std::vector<std::string>& tokens, const sql::Table& table,
    Annotation* annotation_out) const {
  Annotation annotation = Annotate(tokens, table);
  const std::vector<std::string> annotated_question = BuildAnnotatedQuestion(
      tokens, annotation, table.schema(), annotation_options());
  std::vector<std::string> sa = translator_->Translate(annotated_question);
  if (annotation_out != nullptr) *annotation_out = std::move(annotation);
  return sa;
}

StatusOr<sql::SelectQuery> NlidbPipeline::TranslateTokens(
    const std::vector<std::string>& tokens, const sql::Table& table) const {
  if (tokens.empty()) {
    return Status::InvalidArgument("empty question");
  }
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("table has no columns");
  }
  Annotation annotation;
  const std::vector<std::string> sa =
      TranslateToAnnotatedSql(tokens, table, &annotation);
  return RecoverSql(sa, annotation, table.schema());
}

StatusOr<sql::SelectQuery> NlidbPipeline::Translate(
    const std::string& question, const sql::Table& table) const {
  return TranslateTokens(text::Tokenize(question), table);
}

}  // namespace core
}  // namespace nlidb
