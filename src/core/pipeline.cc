#include "core/pipeline.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/annotation.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {

const StageTiming* StageTiming::Child(const std::string& child_name) const {
  for (const StageTiming& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

NlidbPipeline::NlidbPipeline(const ModelConfig& config,
                             std::shared_ptr<text::EmbeddingProvider> provider)
    : config_(config), provider_(std::move(provider)) {
  NLIDB_CHECK(provider_ != nullptr) << "pipeline needs an embedding provider";
  // Size the shared pool once per process; 1 forces every substrate
  // consumer (GEMM kernels, influence fan-out) onto the serial path.
  ThreadPool::SetGlobalParallelism(config_.ResolveNumThreads());
  classifier_ = std::make_unique<ColumnMentionClassifier>(config_, *provider_);
  value_detector_ = std::make_unique<ValueDetector>(config_, *provider_);
  translator_ = std::make_unique<Seq2SeqTranslator>(config_);
  annotator_ = std::make_unique<Annotator>(config_, *provider_,
                                           classifier_.get(),
                                           value_detector_.get());
  registry_ = std::make_unique<schema::SchemaRegistry>(
      provider_, schema::SchemaRegistryOptions::FromEnv());
}

/// Shortlist for `tokens` against `table` when the registry's mode and
/// the table's width call for one; nullptr (full scan) otherwise. The
/// returned pointer aliases `storage`.
const std::vector<int>* NlidbPipeline::MaybeShortlist(
    const std::vector<std::string>& tokens, const sql::Table& table,
    std::vector<int>& storage) const {
  if (registry_->mode() != schema::ScanMode::kShortlist) return nullptr;
  if (table.num_columns() <= registry_->options().shortlist_k) return nullptr;
  storage = registry_->ShortlistColumns(tokens, table);
  return &storage;
}

AnnotationOptions NlidbPipeline::annotation_options() const {
  AnnotationOptions options;
  options.column_name_appending = config_.column_name_appending;
  options.table_header_encoding = config_.table_header_encoding;
  return options;
}

TrainReport NlidbPipeline::Train(const data::Dataset& train) {
  TrainReport report;
  NLIDB_LOG(Info) << "training column mention classifier on "
                  << train.examples.size() << " examples";
  report.classifier_loss = TrainColumnMentionClassifier(
      *classifier_, train, config_, &report.classifier_pairs);
  NLIDB_LOG(Info) << "training value detector";
  report.value_loss = TrainValueDetector(*value_detector_, train,
                                         *registry_, config_,
                                         &report.value_pairs);
  NLIDB_LOG(Info) << "training seq2seq translator";
  report.seq2seq_loss = TrainSeq2Seq(*translator_, train,
                                     annotation_options(), config_,
                                     &report.seq2seq_pairs);
  return report;
}

TrainReport NlidbPipeline::Train(const data::Dataset& train,
                                 const data::Dataset& augmentation) {
  if (augmentation.examples.empty()) return Train(train);
  return Train(AugmentDataset(train, augmentation));
}

NlidbPipeline::TrainableComponents NlidbPipeline::MutableForTraining() {
  return TrainableComponents{classifier_.get(), value_detector_.get(),
                             translator_.get()};
}

StatusOr<Annotation> NlidbPipeline::Annotate(
    const std::vector<std::string>& tokens, const sql::Table& table) const {
  if (tokens.empty()) {
    return Status::InvalidArgument("empty question");
  }
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("table has no columns");
  }
  const schema::TableStatsEntry& entry = registry_->EntryFor(table);
  std::vector<int> shortlist;
  const std::vector<int>* shortlist_ptr =
      MaybeShortlist(tokens, table, shortlist);
  return annotator_->Annotate(tokens, table, entry.stats, metadata_,
                              /*ctx=*/nullptr, /*debug=*/nullptr,
                              shortlist_ptr);
}

StatusOr<QueryResult> NlidbPipeline::Query(const QueryRequest& request) const {
  static metrics::Counter& queries =
      metrics::MetricsRegistry::Global().GetCounter("pipeline.queries");
  static metrics::Counter& recovery_failures =
      metrics::MetricsRegistry::Global().GetCounter(
          "pipeline.recovery_failures");
  static metrics::Counter& execution_failures =
      metrics::MetricsRegistry::Global().GetCounter(
          "pipeline.execution_failures");
  static metrics::Histogram& latency =
      metrics::MetricsRegistry::Global().GetHistogram("pipeline.latency_ns");
  static metrics::Counter& deadline_exceeded =
      metrics::MetricsRegistry::Global().GetCounter(
          "pipeline.deadline_exceeded");
  static metrics::Counter& degraded_queries =
      metrics::MetricsRegistry::Global().GetCounter(
          "pipeline.degraded_queries");

  trace::TraceSpan span("pipeline.query");
  queries.Increment();
  const schema::SchemaRef& ref = request.schema_ref;
  if (ref.unset()) {
    return Status::InvalidArgument(
        "QueryRequest has no schema reference: set schema_ref");
  }
  if (ref.kind() == schema::SchemaRef::Kind::kTable &&
      ref.table() == nullptr) {
    return Status::InvalidArgument("SchemaRef::Table is null");
  }

  QueryResult result;
  const CancelContext ctx{request.deadline, request.cancel};
  const bool timings = request.collect_timings;
  const uint64_t query_start = trace::NowNs();
  uint64_t stage_start = 0;
  auto begin_stage = [&] {
    if (timings) stage_start = trace::NowNs();
  };
  auto end_stage = [&](const char* name) {
    if (timings) {
      result.stages.children.push_back(
          StageTiming{name, trace::NowNs() - stage_start, {}});
    }
  };
  // Mid-flight failure path: the stages completed so far (with the total
  // wall time up to the failure) are handed to the caller through
  // `request.partial_result`, so a timed-out query still shows where
  // its budget went.
  auto fail = [&](const Status& status) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded.Increment();
    }
    if (request.partial_result != nullptr) {
      if (timings) result.stages.wall_ns = trace::NowNs() - query_start;
      *request.partial_result = std::move(result);
    }
    return status;
  };
  if (timings) result.stages.name = "query";

  {
    trace::TraceSpan stage("pipeline.tokenize");
    begin_stage();
    result.tokens = request.tokens.empty() ? text::Tokenize(request.question)
                                           : request.tokens;
    end_stage("tokenize");
  }
  if (result.tokens.empty()) {
    return fail(Status::InvalidArgument("empty question"));
  }
  span.Annotate("num_tokens", static_cast<int64_t>(result.tokens.size()));
  {
    Status s = ctx.Check("pipeline.tokenize");
    if (!s.ok()) return fail(s);
  }

  // Schema resolution: ref -> concrete table. After tokenize because
  // Route() refs rank registered tables against the question tokens;
  // direct refs resolve in constant time. Always emitted so the stage
  // tree has a fixed shape.
  const sql::Table* resolved = nullptr;
  {
    trace::TraceSpan stage("pipeline.resolve");
    begin_stage();
    StatusOr<schema::Resolution> resolution =
        registry_->Resolve(ref, result.tokens);
    if (!resolution.ok()) return fail(resolution.status());
    resolved = resolution->table;
    result.table_id = resolution->id;
    result.table_name = resolved->name();
    result.routing = std::move(resolution->candidates);
    stage.Annotate("table", result.table_name);
    end_stage("resolve");
  }
  const sql::Table& table = *resolved;
  if (table.num_columns() == 0) {
    return fail(Status::InvalidArgument("table has no columns"));
  }
  span.Annotate("num_columns", static_cast<int64_t>(table.num_columns()));

  {
    trace::TraceSpan stage("pipeline.annotate");
    begin_stage();
    // Stats lookup and shortlist ranking are charged to the annotate
    // stage: they are the per-question cost of column scoring, which is
    // exactly what the scale bench's "annotate flat vs registry size"
    // gate must observe.
    const schema::TableStatsEntry& entry = registry_->EntryFor(table);
    std::vector<int> shortlist;
    const std::vector<int>* shortlist_ptr =
        MaybeShortlist(result.tokens, table, shortlist);
    Annotator::AnnotateDebug debug;
    StatusOr<Annotation> annotation =
        annotator_->Annotate(result.tokens, table, entry.stats, metadata_,
                             &ctx, &debug, shortlist_ptr);
    if (!annotation.ok()) return fail(annotation.status());
    result.annotation = std::move(annotation).value();
    result.degraded_linear_resolution = debug.linear_resolution_fallback;
    end_stage("annotate");
  }

  {
    trace::TraceSpan stage("pipeline.build_qa");
    begin_stage();
    result.annotated_question = BuildAnnotatedQuestion(
        result.tokens, result.annotation, table.schema(),
        annotation_options());
    end_stage("build_qa");
  }
  {
    Status s = ctx.Check("pipeline.build_qa");
    if (!s.ok()) return fail(s);
  }

  {
    trace::TraceSpan stage("pipeline.translate");
    begin_stage();
    StatusOr<Seq2SeqTranslator::Decoded> decoded =
        request.translate_override
            ? request.translate_override(result.annotated_question, &ctx)
            : translator_->Decode(result.annotated_question, &ctx);
    if (!decoded.ok()) return fail(decoded.status());
    result.annotated_sql = std::move(decoded->tokens);
    result.translate_score = decoded->score;
    result.degraded_greedy_decode = decoded->used_greedy_fallback;
    end_stage("translate");
  }
  if (result.degraded_linear_resolution || result.degraded_greedy_decode) {
    degraded_queries.Increment();
  }

  {
    trace::TraceSpan stage("pipeline.recover");
    begin_stage();
    StatusOr<sql::SelectQuery> recovered =
        RecoverSql(result.annotated_sql, result.annotation, table.schema());
    if (recovered.ok()) {
      result.query = std::move(recovered).value();
    } else {
      result.recovery_status = recovered.status();
      recovery_failures.Increment();
    }
    end_stage("recover");
  }

  if (request.execute && result.query.has_value()) {
    trace::TraceSpan stage("pipeline.execute");
    begin_stage();
    StatusOr<std::vector<sql::Value>> rows = sql::Execute(*result.query, table);
    if (rows.ok()) {
      result.rows = std::move(rows).value();
    } else {
      result.execution_status = rows.status();
      execution_failures.Increment();
    }
    end_stage("execute");
  }

  const uint64_t total_ns = trace::NowNs() - query_start;
  if (timings) result.stages.wall_ns = total_ns;
  latency.Record(total_ns);
  span.Annotate("recovered", static_cast<int64_t>(result.query.has_value()));
  return result;
}

}  // namespace core
}  // namespace nlidb
