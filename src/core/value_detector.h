#ifndef NLIDB_CORE_VALUE_DETECTOR_H_
#define NLIDB_CORE_VALUE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/config.h"
#include "nn/layers.h"
#include "sql/statistics.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {

/// The value detection classifier of Sec. IV-D.
///
/// Takes a question span's mean embedding s_span and a column's data
/// statistics s_c and scores
///   y = sigmoid(W2 relu(W1 [s_c - s_span, s_c * s_span] + b1) + b2).
/// Because s_c summarizes the column without enumerating its values, the
/// detector handles counterfactual values (challenge 4): "joe biden" is
/// still close to the statistics of a person-name column even if absent
/// from the table.
class ValueDetector : public nn::Module {
 public:
  ValueDetector(const ModelConfig& config,
                const text::EmbeddingProvider& provider);

  /// Forward pass returning the [1,1] logit for (span embedding, column
  /// statistics) as a differentiable graph (used in training).
  /// InvalidArgument when either vector does not have the provider's
  /// dimension (request error, not a process-fatal invariant).
  StatusOr<Var> ForwardFromVectors(const std::vector<float>& span_embedding,
                                   const std::vector<float>& column_stats) const;

  /// P(span is a value of the column described by `stats`).
  StatusOr<float> Score(const std::vector<std::string>& span_tokens,
                        const sql::ColumnStatistics& stats) const;

  /// Candidate value spans of a question: contiguous spans of length
  /// 1..max_value_span containing no stop words (Sec. IV-D).
  std::vector<text::Span> CandidateSpans(
      const std::vector<std::string>& tokens) const;

  /// For every candidate span, the columns whose score exceeds 0.5,
  /// sorted by score descending. A span with no accepting column is not
  /// a value mention.
  struct Detection {
    text::Span span;
    std::vector<std::pair<int, float>> column_scores;  // (column, score>0.5)
  };
  /// `ctx` (optional) is polled once per candidate span; an expired
  /// deadline surfaces as DeadlineExceeded instead of finishing the scan.
  StatusOr<std::vector<Detection>> Detect(
      const std::vector<std::string>& tokens,
      const std::vector<sql::ColumnStatistics>& table_stats,
      const CancelContext* ctx = nullptr) const;

  void CollectParameters(std::vector<Var>* out) const override;

  const ModelConfig& config() const { return config_; }
  const text::EmbeddingProvider& provider() const { return *provider_; }

 private:
  ModelConfig config_;
  const text::EmbeddingProvider* provider_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_VALUE_DETECTOR_H_
