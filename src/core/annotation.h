#ifndef NLIDB_CORE_ANNOTATION_H_
#define NLIDB_CORE_ANNOTATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/query.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {

/// One detected (column, value) mention pair. Pair i (0-based) owns the
/// annotation symbols c_{i+1} and v_{i+1}.
struct MentionPair {
  int column = -1;          // schema column index; -1 if unresolved
  text::Span column_span;   // empty when the mention is implicit
  std::string value_text;   // surface value ("" when the pair has no value)
  text::Span value_span;    // empty when the pair has no value
};

/// The full annotation of a question: ordered mention pairs. Columns not
/// mentioned anywhere remain reachable through table-header symbols
/// g_1..g_k (schema order).
struct Annotation {
  std::vector<MentionPair> pairs;

  /// Index of the pair whose column is `column`, or -1.
  int PairForColumn(int column) const;
};

/// Options controlling the annotated-sequence representation (Sec. V-A).
struct AnnotationOptions {
  /// true: "column name appending" — symbols inserted *before* mention
  /// words, which stay in place (Fig. 6a top). false: "symbol
  /// substitution" — mention words replaced by the symbol (ablation row).
  bool column_name_appending = true;
  /// Append "g_i <column words>" for every schema column (Fig. 6b).
  bool table_header_encoding = true;
};

/// Builds the annotated question token sequence q^a.
std::vector<std::string> BuildAnnotatedQuestion(
    const std::vector<std::string>& tokens, const Annotation& annotation,
    const sql::Schema& schema, const AnnotationOptions& options);

/// Builds the gold annotated SQL token sequence s^a for training:
/// condition columns/values that are annotated become c_i / v_i symbols;
/// an unannotated select/condition column becomes its g_j symbol (header
/// encoding on) or its literal column name; an unannotated value is
/// emitted as its literal tokens (the copy mechanism learns to copy them).
std::vector<std::string> BuildAnnotatedSql(const sql::SelectQuery& query,
                                           const Annotation& annotation,
                                           const sql::Schema& schema,
                                           const AnnotationOptions& options);

/// Recovers a concrete SQL query from decoded annotated-SQL tokens
/// (deterministic step 3 of the framework). Symbols resolve through
/// `annotation`; literal column/value tokens are accepted as fallback.
StatusOr<sql::SelectQuery> RecoverSql(const std::vector<std::string>& sa_tokens,
                                      const Annotation& annotation,
                                      const sql::Schema& schema);

/// True for annotation symbols "c<k>", "v<k>", "g<k>".
bool IsAnnotationSymbol(const std::string& token);

}  // namespace core
}  // namespace nlidb

#endif  // NLIDB_CORE_ANNOTATION_H_
