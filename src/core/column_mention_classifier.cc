#include "core/column_mention_classifier.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

ColumnMentionClassifier::ColumnMentionClassifier(
    const ModelConfig& config, const text::EmbeddingProvider& provider)
    : config_(config), provider_(&provider) {
  NLIDB_CHECK(config_.word_dim == provider.dim())
      << "word_dim must match EmbeddingProvider dim";
  Rng rng(config_.seed);
  // Generous vocab budget; rows are initialized lazily by AddVocabulary.
  word_embedding_ = std::make_unique<nn::Embedding>(
      /*vocab_size=*/4096, config_.word_dim, rng);
  char_embedder_ = std::make_unique<nn::CharCnnEmbedder>(
      char_vocab_.size(), config_.char_dim, config_.char_per_width,
      config_.char_widths, rng);
  const int emb_dim = config_.word_dim + char_embedder_->output_dim();
  question_lstm_ = std::make_unique<nn::StackedLstm>(
      emb_dim, config_.classifier_hidden, config_.classifier_layers, rng);
  column_lstm_ = std::make_unique<nn::StackedLstm>(
      emb_dim, config_.classifier_hidden, config_.classifier_layers, rng);
  const int h = config_.classifier_hidden;
  attention_ = std::make_unique<nn::AdditiveAttention>(h, h, rng);
  query_state_proj_ = std::make_unique<nn::Linear>(h, h, rng, /*use_bias=*/false);
  query_hidden_proj_ = std::make_unique<nn::Linear>(h, h, rng, /*use_bias=*/true);
  // z_t = [s_t^c ; context] has width 2h; bi-LSTM output per step is 2h.
  fwd_cell_ = std::make_unique<nn::LstmCell>(2 * h, h, rng);
  bwd_cell_ = std::make_unique<nn::LstmCell>(2 * h, h, rng);
  // Each column-word slot carries [fw_t ; bw_t ; max-sim_t ; mean-sim_t]:
  // the LSTM states plus BiDAF-style word-similarity features.
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{(2 * h + 2) * config_.max_column_words,
                       config_.classifier_mlp_hidden, 1},
      rng);
}

void ColumnMentionClassifier::AddVocabulary(
    const std::vector<std::string>& words) {
  for (const auto& w : words) {
    if (vocab_.Contains(w)) continue;
    if (vocab_.size() >= word_embedding_->vocab_size()) break;  // -> <unk>
    const int id = vocab_.AddToken(w);
    if (id == text::Vocab::kUnk) continue;  // vocab frozen
    word_embedding_->SetRow(id, provider_->Vector(w));
  }
}

StatusOr<Var> ColumnMentionClassifier::Embed(
    const std::vector<std::string>& words, Var* word_lookup,
    std::vector<Var>* char_outputs) const {
  if (words.empty()) {
    return Status::InvalidArgument("cannot embed an empty word sequence");
  }
  std::vector<int> ids;
  ids.reserve(words.size());
  for (const auto& w : words) ids.push_back(vocab_.GetId(w));
  Var word_part = word_embedding_->Forward(ids);  // [n, word_dim]
  if (word_lookup != nullptr) *word_lookup = word_part;
  std::vector<Var> rows;
  rows.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    Var char_part = char_embedder_->Forward(char_vocab_.Encode(words[i]));
    if (char_outputs != nullptr) char_outputs->push_back(char_part);
    rows.push_back(
        ops::ConcatCols({ops::PickRow(word_part, static_cast<int>(i)),
                         char_part}));
  }
  return ops::ConcatRows(rows);  // [n, word_dim + char_out]
}

StatusOr<ColumnMentionClassifier::ForwardResult>
ColumnMentionClassifier::Forward(const std::vector<std::string>& question,
                                 const std::vector<std::string>& column) const {
  ForwardResult result;
  StatusOr<Var> q_emb_or = Embed(question, &result.question_word_embeddings,
                                 &result.question_char_embeddings);
  if (!q_emb_or.ok()) return q_emb_or.status();
  Var q_emb = *q_emb_or;
  Var c_word_lookup;
  StatusOr<Var> c_emb_or = Embed(column, &c_word_lookup, nullptr);
  if (!c_emb_or.ok()) return c_emb_or.status();
  Var c_emb = *c_emb_or;

  // BiDAF-style similarity matrix between column and question word
  // embeddings (the classifier is "a bidirectional attention flow" in the
  // paper; the similarity matrix is its core signal). Embeddings start
  // unit-norm, so dots approximate cosines.
  Var sim = ops::MatMul(c_word_lookup,
                        ops::Transpose(result.question_word_embeddings));
  Var sim_max = ops::RowMax(sim);    // [m,1]
  Var sim_mean = ops::RowMean(sim);  // [m,1]

  Var sq = question_lstm_->Forward(q_emb);  // [n, h]
  Var sc = column_lstm_->Forward(c_emb);    // [m, h]

  // Attention bi-LSTM over column steps. The query contribution at step t
  // is W2 s_t^c + W3 d_{t-1} + b (paper's e_t equation).
  Var memory_proj = attention_->ProjectMemory(sq);
  const int m = sc->value.rows();
  const int capped = std::min(m, config_.max_column_words);

  auto run_direction = [&](bool forward) {
    std::vector<Var> outs(capped);
    nn::LstmCell& cell = forward ? *fwd_cell_ : *bwd_cell_;
    nn::LstmCell::State state = cell.InitialState();
    for (int step = 0; step < capped; ++step) {
      const int t = forward ? step : capped - 1 - step;
      Var st = ops::PickRow(sc, t);
      Var query = ops::Add(query_state_proj_->Forward(st),
                           query_hidden_proj_->Forward(state.h));
      Var energies = attention_->Energies(memory_proj, query);
      Var weights = attention_->Weights(energies);
      Var context = attention_->Context(weights, sq);
      Var zt = ops::ConcatCols({st, context});
      state = cell.Step(zt, state);
      outs[t] = state.h;
    }
    return outs;
  };
  std::vector<Var> fw = run_direction(true);
  std::vector<Var> bw = run_direction(false);

  std::vector<Var> slots;
  slots.reserve(config_.max_column_words);
  const int h = config_.classifier_hidden;
  Var zero_slot = MakeVar(Tensor::Zeros({1, 2 * h + 2}));
  for (int t = 0; t < config_.max_column_words; ++t) {
    if (t < capped) {
      slots.push_back(ops::ConcatCols({fw[t], bw[t],
                                       ops::PickRow(sim_max, t),
                                       ops::PickRow(sim_mean, t)}));
    } else {
      slots.push_back(zero_slot);  // zero-padding (paper Sec. IV-B iii)
    }
  }
  Var features = ops::ConcatCols(slots);  // [1, 2h * max_column_words]
  result.logit = head_->Forward(features);
  return result;
}

StatusOr<float> ColumnMentionClassifier::Predict(
    const std::vector<std::string>& question,
    const std::vector<std::string>& column) const {
  StatusOr<ForwardResult> r = Forward(question, column);
  if (!r.ok()) return r.status();
  const float x = r->logit->value.vec()[0];
  return 1.0f / (1.0f + std::exp(-x));
}

StatusOr<std::vector<float>> ColumnMentionClassifier::PredictBatch(
    const std::vector<std::string>& question,
    const std::vector<std::vector<std::string>>& columns) const {
  const int batch = static_cast<int>(columns.size());
  if (batch == 0) return std::vector<float>{};
  // Shared question encoding, computed once instead of once per column.
  Var q_word;
  StatusOr<Var> q_emb_or = Embed(question, &q_word, nullptr);
  if (!q_emb_or.ok()) return q_emb_or.status();
  Var q_emb = *q_emb_or;
  Var q_word_t = ops::Transpose(q_word);
  Var sq = question_lstm_->Forward(q_emb);
  Var memory_proj = attention_->ProjectMemory(sq);
  const int h = config_.classifier_hidden;

  // Per-column encodings and BiDAF similarity features (cheap: a column
  // is a handful of words).
  std::vector<Var> sc(batch);
  std::vector<Var> sim_max(batch);
  std::vector<Var> sim_mean(batch);
  std::vector<int> capped(batch);
  for (int c = 0; c < batch; ++c) {
    Var c_word;
    StatusOr<Var> c_emb_or = Embed(columns[c], &c_word, nullptr);
    if (!c_emb_or.ok()) return c_emb_or.status();
    Var c_emb = *c_emb_or;
    Var sim = ops::MatMul(c_word, q_word_t);
    sim_max[c] = ops::RowMax(sim);
    sim_mean[c] = ops::RowMean(sim);
    sc[c] = column_lstm_->Forward(c_emb);
    capped[c] = std::min(sc[c]->value.rows(), config_.max_column_words);
  }

  // Columns of equal capped length walk the attention bi-LSTM in
  // lockstep: each group member is one row of the shared state matrix,
  // so the per-step projections, context GEMM, and LSTM cell all run
  // once per group instead of once per column. Rows evolve independently
  // through every op involved, which keeps each row bitwise equal to the
  // serial Forward of that column.
  std::vector<std::vector<int>> groups(config_.max_column_words + 1);
  for (int c = 0; c < batch; ++c) groups[capped[c]].push_back(c);
  std::vector<std::vector<Var>> fw(batch);
  std::vector<std::vector<Var>> bw(batch);
  for (int c = 0; c < batch; ++c) {
    fw[c].resize(capped[c]);
    bw[c].resize(capped[c]);
  }
  for (int len = 1; len <= config_.max_column_words; ++len) {
    const std::vector<int>& group = groups[len];
    if (group.empty()) continue;
    const int g = static_cast<int>(group.size());
    auto run_direction = [&](bool forward) {
      std::vector<std::vector<Var>>& outs = forward ? fw : bw;
      nn::LstmCell& cell = forward ? *fwd_cell_ : *bwd_cell_;
      nn::LstmCell::State state = cell.InitialState(g);
      for (int step = 0; step < len; ++step) {
        const int t = forward ? step : len - 1 - step;
        std::vector<Var> st_rows(g);
        for (int i = 0; i < g; ++i) st_rows[i] = ops::PickRow(sc[group[i]], t);
        Var st = ops::ConcatRows(st_rows);  // [g, h]
        Var query = ops::Add(query_state_proj_->Forward(st),
                             query_hidden_proj_->Forward(state.h));
        std::vector<Var> energy_rows(g);
        for (int i = 0; i < g; ++i) {
          energy_rows[i] =
              attention_->Energies(memory_proj, ops::PickRow(query, i));
        }
        Var weights = attention_->Weights(ops::ConcatRows(energy_rows));
        Var context = attention_->Context(weights, sq);  // [g, h]
        state = cell.Step(ops::ConcatCols({st, context}), state);
        for (int i = 0; i < g; ++i) {
          outs[group[i]][t] = ops::PickRow(state.h, i);
        }
      }
    };
    run_direction(true);
    run_direction(false);
  }

  // One feature row per column, one head-MLP GEMM for all of them.
  Var zero_slot = MakeVar(Tensor::Zeros({1, 2 * h + 2}));
  std::vector<Var> feature_rows(batch);
  for (int c = 0; c < batch; ++c) {
    std::vector<Var> slots;
    slots.reserve(config_.max_column_words);
    for (int t = 0; t < config_.max_column_words; ++t) {
      if (t < capped[c]) {
        slots.push_back(ops::ConcatCols({fw[c][t], bw[c][t],
                                         ops::PickRow(sim_max[c], t),
                                         ops::PickRow(sim_mean[c], t)}));
      } else {
        slots.push_back(zero_slot);
      }
    }
    feature_rows[c] = ops::ConcatCols(slots);
  }
  Var logits = head_->Forward(ops::ConcatRows(feature_rows));  // [batch, 1]
  std::vector<float> probs(batch);
  for (int c = 0; c < batch; ++c) {
    probs[c] = 1.0f / (1.0f + std::exp(-logits->value(c, 0)));
  }
  return probs;
}

void ColumnMentionClassifier::CollectParameters(std::vector<Var>* out) const {
  word_embedding_->CollectParameters(out);
  char_embedder_->CollectParameters(out);
  question_lstm_->CollectParameters(out);
  column_lstm_->CollectParameters(out);
  attention_->CollectParameters(out);
  query_state_proj_->CollectParameters(out);
  query_hidden_proj_->CollectParameters(out);
  fwd_cell_->CollectParameters(out);
  bwd_cell_->CollectParameters(out);
  head_->CollectParameters(out);
}

}  // namespace core
}  // namespace nlidb
