#include "core/column_mention_classifier.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {

ColumnMentionClassifier::ColumnMentionClassifier(
    const ModelConfig& config, const text::EmbeddingProvider& provider)
    : config_(config), provider_(&provider) {
  NLIDB_CHECK(config_.word_dim == provider.dim())
      << "word_dim must match EmbeddingProvider dim";
  Rng rng(config_.seed);
  // Generous vocab budget; rows are initialized lazily by AddVocabulary.
  word_embedding_ = std::make_unique<nn::Embedding>(
      /*vocab_size=*/4096, config_.word_dim, rng);
  char_embedder_ = std::make_unique<nn::CharCnnEmbedder>(
      char_vocab_.size(), config_.char_dim, config_.char_per_width,
      config_.char_widths, rng);
  const int emb_dim = config_.word_dim + char_embedder_->output_dim();
  question_lstm_ = std::make_unique<nn::StackedLstm>(
      emb_dim, config_.classifier_hidden, config_.classifier_layers, rng);
  column_lstm_ = std::make_unique<nn::StackedLstm>(
      emb_dim, config_.classifier_hidden, config_.classifier_layers, rng);
  const int h = config_.classifier_hidden;
  attention_ = std::make_unique<nn::AdditiveAttention>(h, h, rng);
  query_state_proj_ = std::make_unique<nn::Linear>(h, h, rng, /*use_bias=*/false);
  query_hidden_proj_ = std::make_unique<nn::Linear>(h, h, rng, /*use_bias=*/true);
  // z_t = [s_t^c ; context] has width 2h; bi-LSTM output per step is 2h.
  fwd_cell_ = std::make_unique<nn::LstmCell>(2 * h, h, rng);
  bwd_cell_ = std::make_unique<nn::LstmCell>(2 * h, h, rng);
  // Each column-word slot carries [fw_t ; bw_t ; max-sim_t ; mean-sim_t]:
  // the LSTM states plus BiDAF-style word-similarity features.
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int>{(2 * h + 2) * config_.max_column_words,
                       config_.classifier_mlp_hidden, 1},
      rng);
}

void ColumnMentionClassifier::AddVocabulary(
    const std::vector<std::string>& words) {
  for (const auto& w : words) {
    if (vocab_.Contains(w)) continue;
    if (vocab_.size() >= word_embedding_->vocab_size()) break;  // -> <unk>
    const int id = vocab_.AddToken(w);
    if (id == text::Vocab::kUnk) continue;  // vocab frozen
    word_embedding_->SetRow(id, provider_->Vector(w));
  }
}

Var ColumnMentionClassifier::Embed(const std::vector<std::string>& words,
                                   Var* word_lookup,
                                   std::vector<Var>* char_outputs) const {
  NLIDB_CHECK(!words.empty()) << "Embed of empty sequence";
  std::vector<int> ids;
  ids.reserve(words.size());
  for (const auto& w : words) ids.push_back(vocab_.GetId(w));
  Var word_part = word_embedding_->Forward(ids);  // [n, word_dim]
  if (word_lookup != nullptr) *word_lookup = word_part;
  std::vector<Var> rows;
  rows.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    Var char_part = char_embedder_->Forward(char_vocab_.Encode(words[i]));
    if (char_outputs != nullptr) char_outputs->push_back(char_part);
    rows.push_back(
        ops::ConcatCols({ops::PickRow(word_part, static_cast<int>(i)),
                         char_part}));
  }
  return ops::ConcatRows(rows);  // [n, word_dim + char_out]
}

ColumnMentionClassifier::ForwardResult ColumnMentionClassifier::Forward(
    const std::vector<std::string>& question,
    const std::vector<std::string>& column) const {
  ForwardResult result;
  Var q_emb = Embed(question, &result.question_word_embeddings,
                    &result.question_char_embeddings);
  Var c_word_lookup;
  Var c_emb = Embed(column, &c_word_lookup, nullptr);

  // BiDAF-style similarity matrix between column and question word
  // embeddings (the classifier is "a bidirectional attention flow" in the
  // paper; the similarity matrix is its core signal). Embeddings start
  // unit-norm, so dots approximate cosines.
  Var sim = ops::MatMul(c_word_lookup,
                        ops::Transpose(result.question_word_embeddings));
  Var sim_max = ops::RowMax(sim);    // [m,1]
  Var sim_mean = ops::RowMean(sim);  // [m,1]

  Var sq = question_lstm_->Forward(q_emb);  // [n, h]
  Var sc = column_lstm_->Forward(c_emb);    // [m, h]

  // Attention bi-LSTM over column steps. The query contribution at step t
  // is W2 s_t^c + W3 d_{t-1} + b (paper's e_t equation).
  Var memory_proj = attention_->ProjectMemory(sq);
  const int m = sc->value.rows();
  const int capped = std::min(m, config_.max_column_words);

  auto run_direction = [&](bool forward) {
    std::vector<Var> outs(capped);
    nn::LstmCell& cell = forward ? *fwd_cell_ : *bwd_cell_;
    nn::LstmCell::State state = cell.InitialState();
    for (int step = 0; step < capped; ++step) {
      const int t = forward ? step : capped - 1 - step;
      Var st = ops::PickRow(sc, t);
      Var query = ops::Add(query_state_proj_->Forward(st),
                           query_hidden_proj_->Forward(state.h));
      Var energies = attention_->Energies(memory_proj, query);
      Var weights = attention_->Weights(energies);
      Var context = attention_->Context(weights, sq);
      Var zt = ops::ConcatCols({st, context});
      state = cell.Step(zt, state);
      outs[t] = state.h;
    }
    return outs;
  };
  std::vector<Var> fw = run_direction(true);
  std::vector<Var> bw = run_direction(false);

  std::vector<Var> slots;
  slots.reserve(config_.max_column_words);
  const int h = config_.classifier_hidden;
  Var zero_slot = MakeVar(Tensor::Zeros({1, 2 * h + 2}));
  for (int t = 0; t < config_.max_column_words; ++t) {
    if (t < capped) {
      slots.push_back(ops::ConcatCols({fw[t], bw[t],
                                       ops::PickRow(sim_max, t),
                                       ops::PickRow(sim_mean, t)}));
    } else {
      slots.push_back(zero_slot);  // zero-padding (paper Sec. IV-B iii)
    }
  }
  Var features = ops::ConcatCols(slots);  // [1, 2h * max_column_words]
  result.logit = head_->Forward(features);
  return result;
}

float ColumnMentionClassifier::Predict(
    const std::vector<std::string>& question,
    const std::vector<std::string>& column) const {
  ForwardResult r = Forward(question, column);
  const float x = r.logit->value.vec()[0];
  return 1.0f / (1.0f + std::exp(-x));
}

void ColumnMentionClassifier::CollectParameters(std::vector<Var>* out) const {
  word_embedding_->CollectParameters(out);
  char_embedder_->CollectParameters(out);
  question_lstm_->CollectParameters(out);
  column_lstm_->CollectParameters(out);
  attention_->CollectParameters(out);
  query_state_proj_->CollectParameters(out);
  query_hidden_proj_->CollectParameters(out);
  fwd_cell_->CollectParameters(out);
  bwd_cell_->CollectParameters(out);
  head_->CollectParameters(out);
}

}  // namespace core
}  // namespace nlidb
