#include "core/annotation.h"

#include <cctype>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace nlidb {
namespace core {

namespace {

std::string ColSymbol(int pair_index) {
  return "c" + std::to_string(pair_index + 1);
}
std::string ValSymbol(int pair_index) {
  return "v" + std::to_string(pair_index + 1);
}
std::string HeaderSymbol(int column) { return "g" + std::to_string(column + 1); }

/// Parses "c3" -> ('c', 3). Returns false for non-symbols.
bool ParseSymbol(const std::string& token, char* kind, int* index) {
  if (token.size() < 2) return false;
  const char k = token[0];
  if (k != 'c' && k != 'v' && k != 'g') return false;
  for (size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  *kind = k;
  *index = std::atoi(token.c_str() + 1);
  return *index >= 1;
}

}  // namespace

bool IsAnnotationSymbol(const std::string& token) {
  char kind = 0;
  int index = 0;
  return ParseSymbol(token, &kind, &index);
}

int Annotation::PairForColumn(int column) const {
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].column == column) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> BuildAnnotatedQuestion(
    const std::vector<std::string>& tokens, const Annotation& annotation,
    const sql::Schema& schema, const AnnotationOptions& options) {
  const int n = static_cast<int>(tokens.size());
  // For each token position, the symbol (if any) whose span starts there,
  // and for substitution mode which positions are swallowed.
  std::vector<std::string> symbol_at(n);
  std::vector<bool> swallowed(n, false);

  auto mark = [&](const text::Span& span, const std::string& symbol) {
    if (span.empty() || span.begin < 0 || span.end > n) return;
    if (!symbol_at[span.begin].empty()) return;  // first annotation wins
    symbol_at[span.begin] = symbol;
    if (!options.column_name_appending) {
      for (int i = span.begin; i < span.end; ++i) swallowed[i] = true;
    }
  };

  for (size_t p = 0; p < annotation.pairs.size(); ++p) {
    mark(annotation.pairs[p].column_span, ColSymbol(static_cast<int>(p)));
    mark(annotation.pairs[p].value_span, ValSymbol(static_cast<int>(p)));
  }

  std::vector<std::string> out;
  out.reserve(tokens.size() + 2 * annotation.pairs.size() +
              2 * schema.num_columns());
  for (int i = 0; i < n; ++i) {
    if (!symbol_at[i].empty()) out.push_back(symbol_at[i]);
    if (!swallowed[i]) out.push_back(tokens[i]);
  }
  if (options.table_header_encoding) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      out.push_back(HeaderSymbol(c));
      for (const auto& w : schema.column(c).DisplayTokens()) out.push_back(w);
    }
  }
  return out;
}

std::vector<std::string> BuildAnnotatedSql(const sql::SelectQuery& query,
                                           const Annotation& annotation,
                                           const sql::Schema& schema,
                                           const AnnotationOptions& options) {
  std::vector<std::string> out;
  out.push_back("SELECT");
  if (query.agg != sql::Aggregate::kNone) {
    out.push_back(sql::AggregateName(query.agg));
  }
  auto column_token = [&](int column) -> std::string {
    const int pair = annotation.PairForColumn(column);
    if (pair >= 0 && !annotation.pairs[pair].column_span.empty()) {
      return ColSymbol(pair);
    }
    if (options.table_header_encoding) return HeaderSymbol(column);
    return schema.column(column).name;
  };
  out.push_back(column_token(query.select_column));
  if (!query.conditions.empty()) {
    out.push_back("WHERE");
    for (size_t i = 0; i < query.conditions.size(); ++i) {
      const sql::Condition& cond = query.conditions[i];
      if (i > 0) out.push_back("AND");
      // Condition columns prefer their pair symbol even for implicit
      // mentions (the pair exists through the paired value).
      const int pair = annotation.PairForColumn(cond.column);
      if (pair >= 0) {
        out.push_back(ColSymbol(pair));
      } else {
        out.push_back(column_token(cond.column));
      }
      out.push_back(sql::CondOpName(cond.op));
      if (pair >= 0 && !annotation.pairs[pair].value_span.empty()) {
        out.push_back(ValSymbol(pair));
      } else {
        // Unannotated value: literal tokens for the copier to produce.
        for (const auto& w : text::Tokenize(cond.value.ToString())) {
          out.push_back(w);
        }
      }
    }
  }
  return out;
}

StatusOr<sql::SelectQuery> RecoverSql(const std::vector<std::string>& sa_tokens,
                                      const Annotation& annotation,
                                      const sql::Schema& schema) {
  size_t pos = 0;
  const size_t n = sa_tokens.size();
  auto peek = [&]() -> const std::string* {
    return pos < n ? &sa_tokens[pos] : nullptr;
  };
  auto next = [&]() -> const std::string* {
    return pos < n ? &sa_tokens[pos++] : nullptr;
  };
  auto resolve_column = [&](const std::string& token, int* column) -> Status {
    char kind = 0;
    int index = 0;
    if (ParseSymbol(token, &kind, &index)) {
      if (kind == 'g') {
        if (index > schema.num_columns()) {
          return Status::OutOfRange("header symbol " + token +
                                    " beyond schema");
        }
        *column = index - 1;
        return Status::Ok();
      }
      if (kind == 'c' || kind == 'v') {
        if (index > static_cast<int>(annotation.pairs.size())) {
          return Status::OutOfRange("pair symbol " + token +
                                    " beyond annotation");
        }
        const int col = annotation.pairs[index - 1].column;
        if (col < 0) {
          return Status::NotFound("pair " + token + " has unresolved column");
        }
        *column = col;
        return Status::Ok();
      }
    }
    const int col = schema.ColumnIndex(token);
    if (col < 0) return Status::NotFound("unknown column token: " + token);
    *column = col;
    return Status::Ok();
  };

  const std::string* tok = next();
  if (tok == nullptr || ToLower(*tok) != "select") {
    return Status::ParseError("annotated SQL must start with SELECT");
  }
  sql::SelectQuery query;
  tok = next();
  if (tok == nullptr) return Status::ParseError("truncated annotated SQL");
  {
    const std::string upper = *tok;
    if (upper == "MAX") query.agg = sql::Aggregate::kMax;
    else if (upper == "MIN") query.agg = sql::Aggregate::kMin;
    else if (upper == "COUNT") query.agg = sql::Aggregate::kCount;
    else if (upper == "SUM") query.agg = sql::Aggregate::kSum;
    else if (upper == "AVG") query.agg = sql::Aggregate::kAvg;
    if (query.agg != sql::Aggregate::kNone) {
      tok = next();
      if (tok == nullptr) return Status::ParseError("missing select column");
    }
  }
  NLIDB_RETURN_IF_ERROR(resolve_column(*tok, &query.select_column));

  if (peek() == nullptr) return query;
  tok = next();
  if (*tok != "WHERE" && ToLower(*tok) != "where") {
    return Status::ParseError("expected WHERE in annotated SQL");
  }
  while (peek() != nullptr) {
    const std::string* col_tok = next();
    if (col_tok == nullptr) break;
    sql::Condition cond;
    NLIDB_RETURN_IF_ERROR(resolve_column(*col_tok, &cond.column));
    const std::string* op_tok = next();
    if (op_tok == nullptr) return Status::ParseError("missing operator");
    if (*op_tok == "=") cond.op = sql::CondOp::kEq;
    else if (*op_tok == ">") cond.op = sql::CondOp::kGt;
    else if (*op_tok == "<") cond.op = sql::CondOp::kLt;
    else return Status::ParseError("bad operator: " + *op_tok);

    // Value: either a v-symbol or a run of literal tokens up to AND/end.
    const std::string* val_tok = next();
    if (val_tok == nullptr) return Status::ParseError("missing value");
    std::string value_text;
    char kind = 0;
    int index = 0;
    if (ParseSymbol(*val_tok, &kind, &index) && kind == 'v') {
      if (index > static_cast<int>(annotation.pairs.size())) {
        return Status::OutOfRange("value symbol beyond annotation");
      }
      value_text = annotation.pairs[index - 1].value_text;
      if (value_text.empty()) {
        return Status::NotFound("value symbol with empty pair value");
      }
    } else {
      value_text = *val_tok;
      while (peek() != nullptr && *peek() != "AND" &&
             ToLower(*peek()) != "and") {
        value_text += ' ';
        value_text += *next();
      }
    }
    const sql::DataType type = schema.column(cond.column).type;
    if (type == sql::DataType::kReal && LooksNumeric(value_text)) {
      cond.value = sql::Value::Real(std::strtod(value_text.c_str(), nullptr));
    } else {
      cond.value = sql::Value::Text(value_text);
    }
    query.conditions.push_back(std::move(cond));
    if (peek() == nullptr) break;
    tok = next();
    if (*tok != "AND" && ToLower(*tok) != "and") {
      return Status::ParseError("expected AND in annotated SQL");
    }
  }
  return query;
}

}  // namespace core
}  // namespace nlidb
