#include "core/decode_grammar.h"

#include "core/annotation.h"

namespace nlidb {
namespace core {

namespace {

using TC = DecodeGrammar::TokenClass;

/// A token usable in a (single-token) column position.
bool IsColumnish(TC c) {
  return c == TC::kColSym || c == TC::kHeaderSym || c == TC::kLiteral ||
         c == TC::kUnk;
}

/// A token usable inside a literal value run.
bool IsValueLiteral(TC c) { return c == TC::kLiteral || c == TC::kUnk; }

/// Classes that are only legal when the token was seen in the source q^a:
/// annotation symbols reference this query's mention pairs / headers, and
/// literal column or value words are copied from the question.
bool RequiresSource(TC c) {
  return c == TC::kColSym || c == TC::kValSym || c == TC::kHeaderSym ||
         c == TC::kLiteral;
}

}  // namespace

DecodeGrammar::DecodeGrammar(const text::Vocab& vocab) {
  const int size = vocab.size();
  classes_.resize(static_cast<size_t>(size), TC::kLiteral);
  for (int id = 0; id < size; ++id) {
    if (id == text::Vocab::kPad || id == text::Vocab::kBos) {
      classes_[id] = TC::kSpecial;
      continue;
    }
    if (id == text::Vocab::kUnk) {
      classes_[id] = TC::kUnk;
      continue;
    }
    if (id == text::Vocab::kEos) {
      classes_[id] = TC::kEos;
      continue;
    }
    const std::string& token = vocab.GetToken(id);
    if (token == "SELECT") {
      classes_[id] = TC::kSelect;
      usable_ = true;
    } else if (token == "WHERE") {
      classes_[id] = TC::kWhere;
    } else if (token == "AND") {
      classes_[id] = TC::kAnd;
    } else if (token == "MAX" || token == "MIN" || token == "COUNT" ||
               token == "SUM" || token == "AVG") {
      classes_[id] = TC::kAgg;
    } else if (token == "=" || token == ">" || token == "<") {
      classes_[id] = TC::kOp;
    } else if (IsAnnotationSymbol(token)) {
      classes_[id] = token[0] == 'c'   ? TC::kColSym
                     : token[0] == 'v' ? TC::kValSym
                                       : TC::kHeaderSym;
    }  // else: kLiteral (the resize default)
  }
}

int DecodeGrammar::Advance(int state, int token_id) const {
  const TC c = Classify(token_id);
  switch (state) {
    case kStart:
      if (c == TC::kSelect) return kAfterSelect;
      break;
    case kAfterSelect:
      if (c == TC::kAgg) return kAfterAgg;
      if (IsColumnish(c)) return kAfterSelCol;
      break;
    case kAfterAgg:
      if (IsColumnish(c)) return kAfterSelCol;
      break;
    case kAfterSelCol:
      if (c == TC::kWhere) return kCondCol;
      if (c == TC::kEos) return kDone;
      break;
    case kCondCol:
      if (IsColumnish(c)) return kCondOp;
      break;
    case kCondOp:
      if (c == TC::kOp) return kCondVal;
      break;
    case kCondVal:
      if (c == TC::kValSym) return kAfterValSym;
      if (IsValueLiteral(c)) return kValLit;
      break;
    case kAfterValSym:
      if (c == TC::kAnd) return kCondCol;
      if (c == TC::kEos) return kDone;
      break;
    case kValLit:
      if (IsValueLiteral(c)) return kValLit;
      if (c == TC::kAnd) return kCondCol;
      if (c == TC::kEos) return kDone;
      break;
    case kDone:
    case kFree:
      return state;
    default:
      break;
  }
  return kFree;
}

bool DecodeGrammar::IsLegal(int state, int token_id,
                            const std::vector<uint8_t>& in_source) const {
  const TC c = Classify(token_id);
  if (c == TC::kSpecial) return false;
  if (RequiresSource(c) && !in_source[static_cast<size_t>(token_id)]) {
    return false;
  }
  switch (state) {
    case kStart:
      return c == TC::kSelect;
    case kAfterSelect:
      return c == TC::kAgg || IsColumnish(c);
    case kAfterAgg:
      return IsColumnish(c);
    case kAfterSelCol:
      return c == TC::kWhere || c == TC::kEos;
    case kCondCol:
      return IsColumnish(c);
    case kCondOp:
      return c == TC::kOp;
    case kCondVal:
      return c == TC::kValSym || IsValueLiteral(c);
    case kAfterValSym:
      return c == TC::kAnd || c == TC::kEos;
    case kValLit:
      return IsValueLiteral(c) || c == TC::kAnd || c == TC::kEos;
    case kDone:
      return c == TC::kEos;
    case kFree:
      return true;
    default:
      return false;
  }
}

}  // namespace core
}  // namespace nlidb
