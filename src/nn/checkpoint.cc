#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>

#include "common/failpoint.h"
#include "common/file_io.h"

namespace nlidb {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x4E4C434Bu;  // "NLCK"
constexpr uint32_t kVersionV1 = 1;        // no footer (read-compat only)
constexpr uint32_t kVersion = 2;          // CRC32C footer over header+payload
constexpr uint32_t kMaxRank = 8;

/// Bounds-checked reader over an in-memory checkpoint image. Loading
/// parses the whole file through this before touching any model
/// parameter, so a truncated or corrupt file can never leave garbage
/// weights behind.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* out) {
    if (size_ - off_ < sizeof(uint32_t)) return false;
    std::memcpy(out, data_ + off_, sizeof(uint32_t));
    off_ += sizeof(uint32_t);
    return true;
  }

  bool ReadFloats(float* out, size_t count) {
    const size_t bytes = count * sizeof(float);
    if (size_ - off_ < bytes || bytes / sizeof(float) != count) return false;
    if (out != nullptr) std::memcpy(out, data_ + off_, bytes);
    off_ += bytes;
    return true;
  }

  size_t offset() const { return off_; }

 private:
  const char* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Shared parse for Load and Verify. With `params` set, validates tensor
/// count and shapes against the model and fills `staged` (same length as
/// `params`); with `params` null, only checks structural integrity.
Status ParseImage(const std::string& buf, const std::string& path,
                  const std::vector<Var>* params,
                  std::vector<std::vector<float>>* staged) {
  Cursor in(buf.data(), buf.size());
  uint32_t magic = 0, version = 0, count = 0;
  if (!in.ReadU32(&magic) || !in.ReadU32(&version) || !in.ReadU32(&count)) {
    return Status::ParseError("truncated checkpoint header: " + path);
  }
  if (magic != kMagic) return Status::ParseError("bad magic: " + path);
  if (version != kVersionV1 && version != kVersion) {
    return Status::ParseError("unsupported checkpoint version: " + path);
  }
  size_t payload_end = buf.size();
  if (version == kVersion) {
    if (buf.size() < 4 * sizeof(uint32_t)) {
      return Status::ParseError("truncated checkpoint: " + path);
    }
    payload_end = buf.size() - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, buf.data() + payload_end, sizeof(uint32_t));
    if (stored_crc != io::Crc32c(buf.data(), payload_end)) {
      return Status::ParseError("corrupt checkpoint (CRC mismatch): " + path);
    }
  }
  if (params != nullptr && count != params->size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params->size()));
  }

  Cursor body(buf.data(), payload_end);
  uint32_t skip = 0;
  for (int i = 0; i < 3; ++i) body.ReadU32(&skip);
  if (staged != nullptr) staged->assign(count, {});
  for (uint32_t t = 0; t < count; ++t) {
    uint32_t rank = 0;
    if (!body.ReadU32(&rank)) {
      return Status::ParseError("truncated checkpoint: " + path);
    }
    if (rank > kMaxRank) {
      return Status::ParseError("implausible tensor rank in " + path);
    }
    std::vector<int> shape(rank);
    size_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t dim = 0;
      if (!body.ReadU32(&dim)) {
        return Status::ParseError("truncated checkpoint: " + path);
      }
      shape[d] = static_cast<int>(dim);
      numel *= dim;
    }
    if (params != nullptr && shape != (*params)[t]->value.shape()) {
      return Status::FailedPrecondition("checkpoint shape mismatch in " +
                                        path);
    }
    float* dst = nullptr;
    if (staged != nullptr) {
      (*staged)[t].resize(numel);
      dst = (*staged)[t].data();
    }
    if (!body.ReadFloats(dst, numel)) {
      return Status::ParseError("truncated checkpoint: " + path);
    }
  }
  if (body.offset() != payload_end) {
    return Status::ParseError("trailing bytes in checkpoint: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status Checkpoint::Save(const std::string& path,
                        const std::vector<Var>& params) {
  io::AtomicFileWriter out(path, "checkpoint");
  auto write_u32 = [&out](uint32_t v) { return out.Append(&v, sizeof(v)); };
  NLIDB_RETURN_IF_ERROR(write_u32(kMagic));
  NLIDB_RETURN_IF_ERROR(write_u32(kVersion));
  NLIDB_RETURN_IF_ERROR(write_u32(static_cast<uint32_t>(params.size())));
  NLIDB_RETURN_IF_ERROR(NLIDB_FAILPOINT("checkpoint/after_header"));
  for (const auto& p : params) {
    const auto& shape = p->value.shape();
    NLIDB_RETURN_IF_ERROR(write_u32(static_cast<uint32_t>(shape.size())));
    for (int d : shape) {
      NLIDB_RETURN_IF_ERROR(write_u32(static_cast<uint32_t>(d)));
    }
    NLIDB_RETURN_IF_ERROR(
        out.Append(p->value.data(), p->value.size() * sizeof(float)));
  }
  // v2 footer: CRC32C of everything above it. Torn or bit-flipped files
  // fail the checksum on load instead of parsing into garbage.
  const uint32_t crc = out.crc();
  NLIDB_RETURN_IF_ERROR(out.Append(&crc, sizeof(crc)));
  return out.Commit();
}

Status Checkpoint::Load(const std::string& path,
                        const std::vector<Var>& params) {
  failpoint::InitFromEnv();
  StatusOr<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  // Stage every tensor before installing any: a failure during parsing
  // leaves the model's parameters exactly as they were.
  std::vector<std::vector<float>> staged;
  NLIDB_RETURN_IF_ERROR(ParseImage(*contents, path, &params, &staged));
  for (size_t t = 0; t < params.size(); ++t) {
    std::memcpy(params[t]->value.data(), staged[t].data(),
                staged[t].size() * sizeof(float));
  }
  return Status::Ok();
}

Status Checkpoint::Verify(const std::string& path) {
  StatusOr<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return ParseImage(*contents, path, nullptr, nullptr);
}

}  // namespace nn
}  // namespace nlidb
