#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>

namespace nlidb {
namespace nn {

namespace {
constexpr uint32_t kMagic = 0x4E4C434Bu;  // "NLCK"
constexpr uint32_t kVersion = 1;
}  // namespace

Status Checkpoint::Save(const std::string& path,
                        const std::vector<Var>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  auto write_u32 = [&out](uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u32(kMagic);
  write_u32(kVersion);
  write_u32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) {
    const auto& shape = p->value.shape();
    write_u32(static_cast<uint32_t>(shape.size()));
    for (int d : shape) write_u32(static_cast<uint32_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status Checkpoint::Load(const std::string& path,
                        const std::vector<Var>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  auto read_u32 = [&in]() {
    uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (read_u32() != kMagic) return Status::ParseError("bad magic: " + path);
  if (read_u32() != kVersion) {
    return Status::ParseError("unsupported checkpoint version: " + path);
  }
  const uint32_t count = read_u32();
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (const auto& p : params) {
    const uint32_t rank = read_u32();
    std::vector<int> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) shape[d] = static_cast<int>(read_u32());
    if (shape != p->value.shape()) {
      return Status::FailedPrecondition("checkpoint shape mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in.good()) return Status::IoError("truncated checkpoint: " + path);
  }
  return Status::Ok();
}

}  // namespace nn
}  // namespace nlidb
