#include "nn/attention.h"

#include "common/logging.h"

namespace nlidb {
namespace nn {

AdditiveAttention::AdditiveAttention(int memory_dim, int attention_dim,
                                     Rng& rng)
    : attention_dim_(attention_dim) {
  memory_proj_ = std::make_unique<Linear>(memory_dim, attention_dim, rng,
                                          /*use_bias=*/false);
  v_ = std::make_unique<Linear>(attention_dim, 1, rng, /*use_bias=*/false);
}

Var AdditiveAttention::ProjectMemory(const Var& memory) const {
  return memory_proj_->Forward(memory);
}

Var AdditiveAttention::Energies(const Var& projected_memory,
                                const Var& query_contrib) const {
  NLIDB_CHECK(query_contrib->value.rows() == 1 &&
              query_contrib->value.cols() == attention_dim_)
      << "Energies query shape";
  // Broadcast-add the query to every memory row, squash, project to scalar.
  Var scores = v_->Forward(ops::Tanh(ops::AddRowBroadcast(
      projected_memory, ops::PickRow(query_contrib, 0))));
  return ops::Transpose(scores);  // [n,1] -> [1,n]
}

Var AdditiveAttention::Weights(const Var& energies) const {
  return ops::SoftmaxRows(energies);
}

Var AdditiveAttention::Context(const Var& weights, const Var& memory) const {
  return ops::MatMul(weights, memory);
}

void AdditiveAttention::CollectParameters(std::vector<Var>* out) const {
  memory_proj_->CollectParameters(out);
  v_->CollectParameters(out);
}

}  // namespace nn
}  // namespace nlidb
