#ifndef NLIDB_NN_MODULE_H_
#define NLIDB_NN_MODULE_H_

#include <vector>

#include "tensor/autograd.h"

namespace nlidb {
namespace nn {

/// Base class for trainable network components.
///
/// A Module owns its parameter `Var`s (created with requires_grad = true)
/// and exposes them through `CollectParameters` so optimizers and
/// checkpointing can walk the whole model. Parameter traversal order must
/// be deterministic — checkpoints are order-based.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Appends this module's trainable parameters to `out` in a fixed order.
  virtual void CollectParameters(std::vector<Var>* out) const = 0;

  /// Convenience wrapper over CollectParameters.
  std::vector<Var> Parameters() const {
    std::vector<Var> out;
    CollectParameters(&out);
    return out;
  }

  /// Total number of scalar parameters.
  size_t NumParameters() const {
    size_t n = 0;
    for (const auto& p : Parameters()) n += p->value.size();
    return n;
  }
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_MODULE_H_
