#include "nn/char_cnn.h"

#include "common/logging.h"

namespace nlidb {
namespace nn {

CharCnnEmbedder::CharCnnEmbedder(int char_vocab_size, int char_dim,
                                 int per_width_dim, std::vector<int> widths,
                                 Rng& rng)
    : char_dim_(char_dim),
      per_width_dim_(per_width_dim),
      widths_(std::move(widths)) {
  NLIDB_CHECK(!widths_.empty()) << "CharCnnEmbedder needs widths";
  char_embedding_ =
      std::make_unique<Embedding>(char_vocab_size, char_dim, rng);
  for (int k : widths_) {
    conv_weights_.push_back(MakeVar(
        Tensor::Xavier(k * char_dim, per_width_dim, rng), /*requires_grad=*/true));
    conv_biases_.push_back(
        MakeVar(Tensor::Zeros({per_width_dim}), /*requires_grad=*/true));
  }
}

Var CharCnnEmbedder::EmbedChars(const std::vector<int>& char_ids) const {
  NLIDB_CHECK(!char_ids.empty()) << "EmbedChars of empty word";
  return char_embedding_->Forward(char_ids);
}

Var CharCnnEmbedder::ForwardFromEmbedded(const Var& char_matrix) const {
  std::vector<Var> parts;
  parts.reserve(widths_.size());
  for (size_t w = 0; w < widths_.size(); ++w) {
    parts.push_back(ops::Conv1dMean(char_matrix, conv_weights_[w],
                                    conv_biases_[w], widths_[w]));
  }
  return ops::ConcatCols(parts);
}

Var CharCnnEmbedder::Forward(const std::vector<int>& char_ids) const {
  return ForwardFromEmbedded(EmbedChars(char_ids));
}

void CharCnnEmbedder::CollectParameters(std::vector<Var>* out) const {
  char_embedding_->CollectParameters(out);
  for (size_t w = 0; w < widths_.size(); ++w) {
    out->push_back(conv_weights_[w]);
    out->push_back(conv_biases_[w]);
  }
}

}  // namespace nn
}  // namespace nlidb
