#ifndef NLIDB_NN_OPTIMIZER_H_
#define NLIDB_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/autograd.h"

namespace nlidb {
namespace nn {

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm` (the paper trains with clipping threshold 5.0). Returns the
/// pre-clip global norm.
float ClipGradNorm(const std::vector<Var>& params, float max_norm);

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_OPTIMIZER_H_
