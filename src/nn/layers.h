#ifndef NLIDB_NN_LAYERS_H_
#define NLIDB_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace nlidb {
namespace nn {

/// Affine transformation y = x W + b for x of shape [m, in].
class Linear : public Module {
 public:
  /// Xavier-initialized weights; zero bias. `use_bias` = false gives a
  /// pure linear map (used for attention score projections).
  Linear(int in_features, int out_features, Rng& rng, bool use_bias = true);

  /// [m, in] -> [m, out].
  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Var weight_;  // [in, out]
  Var bias_;    // [out] (null when use_bias = false)
};

/// Token-id to dense-vector lookup table.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng, float init_stddev = 0.1f);

  /// indices -> [n, dim]. Gradients scatter-add into the table.
  Var Forward(const std::vector<int>& indices) const;

  /// Overwrites row `index` with `vec` (used to load pre-trained vectors).
  void SetRow(int index, const std::vector<float>& vec);

  void CollectParameters(std::vector<Var>* out) const override;

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const Var& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  Var table_;  // [vocab, dim]
};

/// Multi-layer perceptron with ReLU between layers and a linear head.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; requires at least {in, out}.
  Mlp(const std::vector<int>& dims, Rng& rng);

  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Var>* out) const override;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_LAYERS_H_
