#ifndef NLIDB_NN_CHECKPOINT_H_
#define NLIDB_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace nlidb {
namespace nn {

/// Order-based model checkpointing.
///
/// Parameters are stored in the deterministic order produced by
/// `Module::CollectParameters`; loading validates tensor count and shapes
/// against the receiving model, so mismatched architectures fail loudly
/// instead of loading garbage.
class Checkpoint {
 public:
  /// Writes `params` to `path` in a small binary format.
  static Status Save(const std::string& path, const std::vector<Var>& params);

  /// Reads tensors from `path` into `params` (in order). Parsing is
  /// staged: the file is fully validated (v2 files additionally against
  /// their CRC32C footer) before any parameter is written, so a corrupt
  /// checkpoint never leaves a model half-loaded.
  static Status Load(const std::string& path, const std::vector<Var>& params);

  /// Structural integrity check without a receiving model: verifies the
  /// header, the CRC footer (v2), and that every tensor record parses to
  /// exactly the end of the payload. Snapshot selection uses this to
  /// reject torn or corrupt files before mutating any pipeline state.
  static Status Verify(const std::string& path);
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_CHECKPOINT_H_
