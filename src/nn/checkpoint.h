#ifndef NLIDB_NN_CHECKPOINT_H_
#define NLIDB_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace nlidb {
namespace nn {

/// Order-based model checkpointing.
///
/// Parameters are stored in the deterministic order produced by
/// `Module::CollectParameters`; loading validates tensor count and shapes
/// against the receiving model, so mismatched architectures fail loudly
/// instead of loading garbage.
class Checkpoint {
 public:
  /// Writes `params` to `path` in a small binary format.
  static Status Save(const std::string& path, const std::vector<Var>& params);

  /// Reads tensors from `path` into `params` (in order).
  static Status Load(const std::string& path, const std::vector<Var>& params);
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_CHECKPOINT_H_
