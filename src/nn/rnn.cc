#include "nn/rnn.h"

#include "common/logging.h"

namespace nlidb {
namespace nn {

LstmCell::LstmCell(int input_size, int hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = MakeVar(Tensor::Xavier(input_size, 4 * hidden_size, rng),
                  /*requires_grad=*/true);
  w_hh_ = MakeVar(Tensor::Xavier(hidden_size, 4 * hidden_size, rng),
                  /*requires_grad=*/true);
  Tensor b = Tensor::Zeros({4 * hidden_size});
  // Forget-gate bias = 1 eases gradient flow early in training.
  for (int j = hidden_size; j < 2 * hidden_size; ++j) b(j) = 1.0f;
  bias_ = MakeVar(std::move(b), /*requires_grad=*/true);
}

LstmCell::State LstmCell::InitialState() const { return InitialState(1); }

LstmCell::State LstmCell::InitialState(int batch) const {
  NLIDB_CHECK(batch >= 1) << "LstmCell batch size";
  return State{MakeVar(Tensor::Zeros({batch, hidden_size_})),
               MakeVar(Tensor::Zeros({batch, hidden_size_}))};
}

LstmCell::State LstmCell::Step(const Var& x, const State& state) const {
  NLIDB_CHECK(x->value.cols() == input_size_) << "LstmCell input width";
  Var gates = ops::AddRowBroadcast(
      ops::Add(ops::MatMul(x, w_ih_), ops::MatMul(state.h, w_hh_)), bias_);
  const int h = hidden_size_;
  Var i = ops::Sigmoid(ops::SliceCols(gates, 0, h));
  Var f = ops::Sigmoid(ops::SliceCols(gates, h, h));
  Var g = ops::Tanh(ops::SliceCols(gates, 2 * h, h));
  Var o = ops::Sigmoid(ops::SliceCols(gates, 3 * h, h));
  Var c_next = ops::Add(ops::Mul(f, state.c), ops::Mul(i, g));
  Var h_next = ops::Mul(o, ops::Tanh(c_next));
  return State{h_next, c_next};
}

void LstmCell::CollectParameters(std::vector<Var>* out) const {
  out->push_back(w_ih_);
  out->push_back(w_hh_);
  out->push_back(bias_);
}

GruCell::GruCell(int input_size, int hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = MakeVar(Tensor::Xavier(input_size, 3 * hidden_size, rng),
                  /*requires_grad=*/true);
  w_hh_ = MakeVar(Tensor::Xavier(hidden_size, 3 * hidden_size, rng),
                  /*requires_grad=*/true);
  b_ih_ = MakeVar(Tensor::Zeros({3 * hidden_size}), /*requires_grad=*/true);
  b_hh_ = MakeVar(Tensor::Zeros({3 * hidden_size}), /*requires_grad=*/true);
}

Var GruCell::InitialState() const {
  return MakeVar(Tensor::Zeros({1, hidden_size_}));
}

Var GruCell::Step(const Var& x, const Var& h) const {
  NLIDB_CHECK(x->value.cols() == input_size_) << "GruCell input width";
  const int hs = hidden_size_;
  Var gi = ops::AddRowBroadcast(ops::MatMul(x, w_ih_), b_ih_);
  Var gh = ops::AddRowBroadcast(ops::MatMul(h, w_hh_), b_hh_);
  Var r = ops::Sigmoid(
      ops::Add(ops::SliceCols(gi, 0, hs), ops::SliceCols(gh, 0, hs)));
  Var z = ops::Sigmoid(
      ops::Add(ops::SliceCols(gi, hs, hs), ops::SliceCols(gh, hs, hs)));
  Var n = ops::Tanh(ops::Add(ops::SliceCols(gi, 2 * hs, hs),
                             ops::Mul(r, ops::SliceCols(gh, 2 * hs, hs))));
  // h' = (1 - z) * n + z * h = n - z*n + z*h
  return ops::Add(ops::Sub(n, ops::Mul(z, n)), ops::Mul(z, h));
}

void GruCell::CollectParameters(std::vector<Var>* out) const {
  out->push_back(w_ih_);
  out->push_back(w_hh_);
  out->push_back(b_ih_);
  out->push_back(b_hh_);
}

StackedLstm::StackedLstm(int input_size, int hidden_size, int num_layers,
                         Rng& rng)
    : hidden_size_(hidden_size) {
  NLIDB_CHECK(num_layers >= 1) << "StackedLstm needs >= 1 layer";
  int in = input_size;
  for (int l = 0; l < num_layers; ++l) {
    input_affines_.push_back(std::make_unique<Linear>(in, hidden_size, rng));
    cells_.push_back(std::make_unique<LstmCell>(hidden_size, hidden_size, rng));
    in = hidden_size;
  }
}

Var StackedLstm::Forward(const Var& sequence) const {
  NLIDB_CHECK(sequence->value.rank() == 2 && sequence->value.rows() > 0)
      << "StackedLstm input";
  const int n = sequence->value.rows();
  Var layer_input = sequence;
  Var states;
  for (size_t l = 0; l < cells_.size(); ++l) {
    LstmCell::State state = cells_[l]->InitialState();
    std::vector<Var> outputs;
    outputs.reserve(n);
    for (int i = 0; i < n; ++i) {
      Var x = input_affines_[l]->Forward(ops::PickRow(layer_input, i));
      state = cells_[l]->Step(x, state);
      outputs.push_back(state.h);
    }
    states = ops::ConcatRows(outputs);
    layer_input = states;
  }
  return states;
}

void StackedLstm::CollectParameters(std::vector<Var>* out) const {
  for (size_t l = 0; l < cells_.size(); ++l) {
    input_affines_[l]->CollectParameters(out);
    cells_[l]->CollectParameters(out);
  }
}

StackedBiGru::StackedBiGru(int input_size, int hidden_size, int num_layers,
                           Rng& rng)
    : hidden_size_(hidden_size) {
  NLIDB_CHECK(num_layers >= 1) << "StackedBiGru needs >= 1 layer";
  int in = input_size;
  for (int l = 0; l < num_layers; ++l) {
    input_affines_.push_back(std::make_unique<Linear>(in, hidden_size, rng));
    fw_cells_.push_back(std::make_unique<GruCell>(hidden_size, hidden_size, rng));
    bw_cells_.push_back(std::make_unique<GruCell>(hidden_size, hidden_size, rng));
    in = 2 * hidden_size;
  }
}

StackedBiGru::Output StackedBiGru::Forward(const Var& sequence) const {
  NLIDB_CHECK(sequence->value.rank() == 2 && sequence->value.rows() > 0)
      << "StackedBiGru input";
  const int n = sequence->value.rows();
  Var layer_input = sequence;
  Output out;
  for (size_t l = 0; l < fw_cells_.size(); ++l) {
    std::vector<Var> xs;
    xs.reserve(n);
    for (int i = 0; i < n; ++i) {
      xs.push_back(input_affines_[l]->Forward(ops::PickRow(layer_input, i)));
    }
    std::vector<Var> fw(n), bw(n);
    Var h = fw_cells_[l]->InitialState();
    for (int i = 0; i < n; ++i) {
      h = fw_cells_[l]->Step(xs[i], h);
      fw[i] = h;
    }
    out.final_forward = h;
    h = bw_cells_[l]->InitialState();
    for (int i = n - 1; i >= 0; --i) {
      h = bw_cells_[l]->Step(xs[i], h);
      bw[i] = h;
    }
    out.final_backward = h;
    std::vector<Var> merged;
    merged.reserve(n);
    for (int i = 0; i < n; ++i) {
      merged.push_back(ops::ConcatCols({fw[i], bw[i]}));
    }
    out.states = ops::ConcatRows(merged);
    layer_input = out.states;
  }
  return out;
}

void StackedBiGru::CollectParameters(std::vector<Var>* out) const {
  for (size_t l = 0; l < fw_cells_.size(); ++l) {
    input_affines_[l]->CollectParameters(out);
    fw_cells_[l]->CollectParameters(out);
    bw_cells_[l]->CollectParameters(out);
  }
}

}  // namespace nn
}  // namespace nlidb
