#ifndef NLIDB_NN_RNN_H_
#define NLIDB_NN_RNN_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/layers.h"

namespace nlidb {
namespace nn {

/// A single LSTM cell: [h', C'] = LSTM(x, h, C).
///
/// Gate layout in the fused weight matrices is [input, forget, cell, output].
/// Forget-gate bias initialized to 1 (standard trick for gradient flow).
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, Rng& rng);

  struct State {
    Var h;  // [batch, hidden]
    Var c;  // [batch, hidden]
  };

  /// Returns a zero initial state for a single sequence ([1, hidden]).
  State InitialState() const;
  /// Returns a zero initial state for `batch` independent sequences
  /// stepped in lockstep; row b of every subsequent state evolves exactly
  /// as sequence b would alone.
  State InitialState(int batch) const;

  /// One step: x is [batch, input]. Returns the next state.
  State Step(const Var& x, const State& state) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Var w_ih_;  // [input, 4*hidden]
  Var w_hh_;  // [hidden, 4*hidden]
  Var bias_;  // [4*hidden]
};

/// A single GRU cell: h' = GRU(x, h). Gate layout [reset, update, new].
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size, Rng& rng);

  /// Returns a zero [1, hidden] initial state.
  Var InitialState() const;

  /// One step: x is [1, input], h is [1, hidden].
  Var Step(const Var& x, const Var& h) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

  /// Raw weight access for graph-free inference paths that re-implement
  /// `Step` on arena buffers (core/seq2seq_fast.cc). Read-only: mutation
  /// goes through CollectParameters like every other optimizer client.
  const Var& w_ih() const { return w_ih_; }
  const Var& w_hh() const { return w_hh_; }
  const Var& b_ih() const { return b_ih_; }
  const Var& b_hh() const { return b_hh_; }

 private:
  int input_size_;
  int hidden_size_;
  Var w_ih_;  // [input, 3*hidden]
  Var w_hh_;  // [hidden, 3*hidden]
  Var b_ih_;  // [3*hidden]
  Var b_hh_;  // [3*hidden]
};

/// Multi-layer unidirectional LSTM over a [n, d] sequence, with the affine
/// transformation L^l before each layer that the paper uses to keep
/// dimensions consistent (Sec. IV-B part ii).
class StackedLstm : public Module {
 public:
  StackedLstm(int input_size, int hidden_size, int num_layers, Rng& rng);

  /// [n, input] -> top-layer hidden states [n, hidden].
  Var Forward(const Var& sequence) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int hidden_size() const { return hidden_size_; }

 private:
  int hidden_size_;
  std::vector<std::unique_ptr<Linear>> input_affines_;  // L^l per layer
  std::vector<std::unique_ptr<LstmCell>> cells_;
};

/// Stacked bidirectional GRU encoder (paper Sec. V-B): per layer an affine
/// input transformation, then forward and backward GRU passes whose hidden
/// states are concatenated, [n, d] -> [n, 2*hidden].
class StackedBiGru : public Module {
 public:
  StackedBiGru(int input_size, int hidden_size, int num_layers, Rng& rng);

  struct Output {
    Var states;        // [n, 2*hidden], concatenated fw/bw per position
    Var final_forward;  // [1, hidden]: forward state at last position
    Var final_backward; // [1, hidden]: backward state at first position
  };

  Output Forward(const Var& sequence) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int hidden_size() const { return hidden_size_; }
  int num_layers() const { return static_cast<int>(fw_cells_.size()); }

  /// Per-layer component access for graph-free inference (read-only);
  /// `l` must be in [0, num_layers()).
  const Linear& input_affine(int l) const { return *input_affines_[l]; }
  const GruCell& forward_cell(int l) const { return *fw_cells_[l]; }
  const GruCell& backward_cell(int l) const { return *bw_cells_[l]; }

 private:
  int hidden_size_;
  std::vector<std::unique_ptr<Linear>> input_affines_;
  std::vector<std::unique_ptr<GruCell>> fw_cells_;
  std::vector<std::unique_ptr<GruCell>> bw_cells_;
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_RNN_H_
