#include "nn/layers.h"

#include "common/logging.h"

namespace nlidb {
namespace nn {

Linear::Linear(int in_features, int out_features, Rng& rng, bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = MakeVar(Tensor::Xavier(in_features, out_features, rng),
                    /*requires_grad=*/true);
  if (use_bias) {
    bias_ = MakeVar(Tensor::Zeros({out_features}), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  NLIDB_CHECK(x->value.rank() == 2 && x->value.cols() == in_features_)
      << "Linear input shape mismatch: got cols=" << x->value.cols()
      << " want " << in_features_;
  Var y = ops::MatMul(x, weight_);
  if (bias_) y = ops::AddRowBroadcast(y, bias_);
  return y;
}

void Linear::CollectParameters(std::vector<Var>* out) const {
  out->push_back(weight_);
  if (bias_) out->push_back(bias_);
}

Embedding::Embedding(int vocab_size, int dim, Rng& rng, float init_stddev)
    : vocab_size_(vocab_size), dim_(dim) {
  table_ = MakeVar(Tensor::Gaussian({vocab_size, dim}, init_stddev, rng),
                   /*requires_grad=*/true);
}

Var Embedding::Forward(const std::vector<int>& indices) const {
  return ops::EmbeddingLookup(table_, indices);
}

void Embedding::SetRow(int index, const std::vector<float>& vec) {
  NLIDB_CHECK(index >= 0 && index < vocab_size_) << "SetRow index";
  NLIDB_CHECK(static_cast<int>(vec.size()) == dim_) << "SetRow dim";
  for (int j = 0; j < dim_; ++j) table_->value(index, j) = vec[j];
}

void Embedding::CollectParameters(std::vector<Var>* out) const {
  out->push_back(table_);
}

Mlp::Mlp(const std::vector<int>& dims, Rng& rng) {
  NLIDB_CHECK(dims.size() >= 2) << "Mlp needs at least {in, out} dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ops::Relu(h);
  }
  return h;
}

void Mlp::CollectParameters(std::vector<Var>* out) const {
  for (const auto& layer : layers_) layer->CollectParameters(out);
}

}  // namespace nn
}  // namespace nlidb
