#include "nn/optimizer.h"

#include <cmath>

namespace nlidb {
namespace nn {

float ClipGradNorm(const std::vector<Var>& params, float max_norm) {
  float total = 0.0f;
  for (const auto& p : params) {
    if (p->grad.empty()) continue;
    const float n = p->grad.Norm2();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0f) {
    const float scale = max_norm / total;
    for (const auto& p : params) {
      if (!p->grad.empty()) p->grad.Scale(scale);
    }
  }
  return total;
}

void Optimizer::ZeroGrad() {
  for (const auto& p : params_) {
    if (!p->grad.empty()) p->grad.Fill(0.0f);
  }
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p->value.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (p->grad.empty()) continue;
    if (momentum_ > 0.0f) {
      velocity_[i].Scale(momentum_);
      velocity_[i].Axpy(1.0f, p->grad);
      p->value.Axpy(-lr_, velocity_[i]);
    } else {
      p->value.Axpy(-lr_, p->grad);
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (p->grad.empty()) continue;
    auto& g = p->grad.vec();
    auto& m = m_[i].vec();
    auto& v = v_[i].vec();
    auto& w = p->value.vec();
    for (size_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace nlidb
