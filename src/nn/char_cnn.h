#ifndef NLIDB_NN_CHAR_CNN_H_
#define NLIDB_NN_CHAR_CNN_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace nlidb {
namespace nn {

/// Character-level word representation E^char(w) (paper Sec. IV-B, Fig. 4).
///
/// Characters are embedded via a shared table; for each convolution width
/// k in `widths`, a one-dimensional convolution projects every width-k
/// slice of the character matrix and the slice outputs are element-wise
/// averaged. The per-width outputs are concatenated:
///   E^char(w) = [E_3(w), E_4(w), ..., E_7(w)].
class CharCnnEmbedder : public Module {
 public:
  /// `per_width_dim` is the convolution output dimension for each width;
  /// the final representation has `widths.size() * per_width_dim` columns.
  CharCnnEmbedder(int char_vocab_size, int char_dim, int per_width_dim,
                  std::vector<int> widths, Rng& rng);

  /// Maps one word's character ids to its [1, output_dim] representation.
  Var Forward(const std::vector<int>& char_ids) const;

  /// Same as Forward but starting from an already-embedded character
  /// matrix [len, char_dim]; used to take gradients w.r.t. character
  /// embeddings for the adversarial influence computation.
  Var ForwardFromEmbedded(const Var& char_matrix) const;

  /// Embeds character ids without convolving: [len, char_dim].
  Var EmbedChars(const std::vector<int>& char_ids) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int output_dim() const {
    return static_cast<int>(widths_.size()) * per_width_dim_;
  }
  int char_dim() const { return char_dim_; }

 private:
  int char_dim_;
  int per_width_dim_;
  std::vector<int> widths_;
  std::unique_ptr<Embedding> char_embedding_;  // shared across widths
  std::vector<Var> conv_weights_;              // per width: [k*char_dim, out]
  std::vector<Var> conv_biases_;               // per width: [out]
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_CHAR_CNN_H_
