#ifndef NLIDB_NN_ATTENTION_H_
#define NLIDB_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace nlidb {
namespace nn {

/// Additive (Bahdanau) attention:
///   e_j   = v^T tanh(W_mem m_j + q)
///   alpha = softmax(e)
///   ctx   = sum_j alpha_j m_j
/// where `q` is an arbitrary query contribution the caller builds from its
/// own projections (the paper's column classifier uses W2 s_t^c + W3 d_{t-1}
/// + b; the decoder uses W3 d_i). Exposing raw energies is required by the
/// copy mechanism, which adds exp(e_ij) to output token scores.
class AdditiveAttention : public Module {
 public:
  AdditiveAttention(int memory_dim, int attention_dim, Rng& rng);

  /// W_mem m_j for all rows: [n, d_mem] -> [n, d_att]. Compute once per
  /// memory, reuse across decode steps.
  Var ProjectMemory(const Var& memory) const;

  /// Raw scores e as a [1, n] row. `query_contrib` is [1, d_att].
  Var Energies(const Var& projected_memory, const Var& query_contrib) const;

  /// softmax(e): [1, n].
  Var Weights(const Var& energies) const;

  /// alpha-weighted sum of memory rows: ([1,n], [n,d]) -> [1,d].
  Var Context(const Var& weights, const Var& memory) const;

  void CollectParameters(std::vector<Var>* out) const override;

  int attention_dim() const { return attention_dim_; }

  /// Raw projection access for graph-free inference paths that mirror
  /// `Energies`/`Context` on arena buffers (read-only).
  const Linear& memory_projection() const { return *memory_proj_; }
  const Linear& score_vector() const { return *v_; }

 private:
  int attention_dim_;
  std::unique_ptr<Linear> memory_proj_;  // no bias
  std::unique_ptr<Linear> v_;            // [d_att -> 1], no bias
};

}  // namespace nn
}  // namespace nlidb

#endif  // NLIDB_NN_ATTENTION_H_
