#include "baselines/sketch_slot_filler.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "core/trainer.h"

namespace nlidb {
namespace baselines {

SketchSlotFiller::SketchSlotFiller(
    const core::ModelConfig& config,
    std::shared_ptr<text::EmbeddingProvider> provider)
    : config_(config),
      provider_(std::move(provider)),
      registry_(provider_) {
  NLIDB_CHECK(provider_ != nullptr) << "sketch filler needs a provider";
  value_detector_ = std::make_unique<core::ValueDetector>(config_, *provider_);
  // Context-free matching only: no classifier, no learned value detector
  // wired into the annotator (we drive the detector directly).
  matcher_ = std::make_unique<core::Annotator>(config_, *provider_,
                                               /*classifier=*/nullptr,
                                               /*value_detector=*/nullptr);
}

float SketchSlotFiller::Train(const data::Dataset& dataset) {
  return core::TrainValueDetector(*value_detector_, dataset, registry_,
                                  config_);
}

sql::Aggregate SketchSlotFiller::PredictAggregate(
    const std::vector<std::string>& tokens) {
  bool how_many = false;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    how_many = how_many || (tokens[i] == "how" && tokens[i + 1] == "many");
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == "highest" || t == "largest" || t == "maximum" || t == "most") {
      return sql::Aggregate::kMax;
    }
    if (t == "lowest" || t == "smallest" || t == "minimum") {
      return sql::Aggregate::kMin;
    }
    if (t == "average" || t == "mean") return sql::Aggregate::kAvg;
    if (i > 0 && tokens[i - 1] == "the" && t == "total") {
      return sql::Aggregate::kSum;
    }
    if (t == "entries" || t == "rows") {
      if (how_many) return sql::Aggregate::kCount;
    }
  }
  return sql::Aggregate::kNone;
}

StatusOr<sql::SelectQuery> SketchSlotFiller::Translate(
    const std::vector<std::string>& tokens, const sql::Table& table) const {
  const sql::Schema& schema = table.schema();
  sql::SelectQuery query;
  query.agg = PredictAggregate(tokens);

  // $SELECT_COL: earliest context-free column match in the question
  // (questions lead with what they ask for); fall back to column 0.
  int select_col = 0;
  int best_pos = 1 << 20;
  for (int c = 0; c < schema.num_columns(); ++c) {
    auto span = matcher_->ContextFreeMatch(tokens,
                                           schema.column(c).DisplayTokens());
    if (span.has_value() && span->begin < best_pos) {
      best_pos = span->begin;
      select_col = c;
    }
  }
  query.select_column = select_col;

  // $COND_COL/$OP/$COND_VAL: type-aware value detection; each value span
  // goes to its highest-scoring column — no structural resolution.
  const auto& stats = registry_.StatsFor(table);
  std::vector<core::ValueDetector::Detection> detections =
      core::ExactCellValueMatches(tokens, table);
  StatusOr<std::vector<core::ValueDetector::Detection>> detected =
      value_detector_->Detect(tokens, stats);
  if (detected.ok()) {
    for (auto& det : *detected) {
      bool covered = false;
      for (const auto& e : detections) {
        covered = covered || e.span.Overlaps(det.span);
      }
      if (!covered) detections.push_back(std::move(det));
    }
  }
  // Longest spans first; skip overlaps.
  std::sort(detections.begin(), detections.end(),
            [](const core::ValueDetector::Detection& a,
               const core::ValueDetector::Detection& b) {
              return a.span.length() > b.span.length();
            });
  std::vector<text::Span> used;
  std::vector<bool> column_used(schema.num_columns(), false);
  for (const auto& det : detections) {
    if (det.column_scores.empty()) continue;
    bool overlap = false;
    for (const auto& u : used) overlap = overlap || u.Overlaps(det.span);
    if (overlap) continue;
    int col = -1;
    for (const auto& [candidate, score] : det.column_scores) {
      if (!column_used[candidate]) {
        col = candidate;
        break;
      }
    }
    if (col < 0) continue;
    used.push_back(det.span);
    column_used[col] = true;

    sql::Condition cond;
    cond.column = col;
    // $OP from comparative keywords right before the value span.
    cond.op = sql::CondOp::kEq;
    for (int i = std::max(0, det.span.begin - 3); i < det.span.begin; ++i) {
      if (tokens[i] == "more" || tokens[i] == "over" ||
          tokens[i] == "greater" || tokens[i] == "above") {
        cond.op = sql::CondOp::kGt;
      }
      if (tokens[i] == "fewer" || tokens[i] == "less" ||
          tokens[i] == "under" || tokens[i] == "below") {
        cond.op = sql::CondOp::kLt;
      }
    }
    const std::string value_text = text::SpanText(tokens, det.span);
    if (schema.column(col).type == sql::DataType::kReal &&
        LooksNumeric(value_text)) {
      cond.value = sql::Value::Real(std::strtod(value_text.c_str(), nullptr));
    } else {
      cond.value = sql::Value::Text(value_text);
    }
    query.conditions.push_back(std::move(cond));
  }
  if (query.conditions.empty()) {
    return Status::NotFound("sketch filler found no conditions");
  }
  return query;
}

}  // namespace baselines
}  // namespace nlidb
