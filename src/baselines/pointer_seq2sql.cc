#include "baselines/pointer_seq2sql.h"

#include "common/logging.h"
#include "core/annotation.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace baselines {

PointerSeq2Sql::PointerSeq2Sql(const core::ModelConfig& config)
    : config_(config) {
  translator_ = std::make_unique<core::Seq2SeqTranslator>(config);
}

std::vector<std::string> PointerSeq2Sql::BuildSource(
    const std::vector<std::string>& tokens, const sql::Schema& schema) {
  std::vector<std::string> out = tokens;
  out.push_back("|");
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(",");
    for (const auto& w : schema.column(c).DisplayTokens()) out.push_back(w);
  }
  return out;
}

std::vector<std::string> PointerSeq2Sql::BuildTarget(
    const sql::SelectQuery& query, const sql::Schema& schema) {
  // An empty annotation renders every column as its literal name and
  // every value as literal word tokens.
  core::AnnotationOptions options;
  options.table_header_encoding = false;
  return core::BuildAnnotatedSql(query, core::Annotation{}, schema, options);
}

float PointerSeq2Sql::Train(const data::Dataset& dataset) {
  struct Pair {
    std::vector<std::string> source;
    std::vector<std::string> target;
  };
  std::vector<Pair> pairs;
  pairs.reserve(dataset.examples.size());
  for (const data::Example& ex : dataset.examples) {
    Pair p;
    p.source = BuildSource(ex.tokens, ex.schema());
    p.target = BuildTarget(ex.query, ex.schema());
    translator_->AddVocabulary(p.source);
    translator_->AddVocabulary(p.target);
    pairs.push_back(std::move(p));
  }
  if (pairs.empty()) return 0.0f;
  nn::Adam optimizer(translator_->Parameters(), config_.seq2seq_lr);
  Rng rng(config_.seed + 21);
  float final_loss = 0.0f;
  for (int epoch = 0; epoch < config_.seq2seq_epochs; ++epoch) {
    rng.Shuffle(pairs);
    float total = 0.0f;
    for (const Pair& p : pairs) {
      Var loss = translator_->Loss(p.source, p.target);
      optimizer.ZeroGrad();
      Backward(loss);
      nn::ClipGradNorm(optimizer.params(), config_.grad_clip);
      optimizer.Step();
      total += loss->value(0);
    }
    final_loss = total / static_cast<float>(pairs.size());
    NLIDB_LOG(Debug) << "pointer-seq2sql epoch " << epoch << " loss "
                     << final_loss;
  }
  return final_loss;
}

StatusOr<sql::SelectQuery> PointerSeq2Sql::Translate(
    const std::vector<std::string>& tokens, const sql::Table& table) const {
  const std::vector<std::string> sql_tokens =
      translator_->Translate(BuildSource(tokens, table.schema()));
  return core::RecoverSql(sql_tokens, core::Annotation{}, table.schema());
}

}  // namespace baselines
}  // namespace nlidb
