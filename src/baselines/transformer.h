#ifndef NLIDB_BASELINES_TRANSFORMER_H_
#define NLIDB_BASELINES_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/translator_interface.h"
#include "nn/layers.h"
#include "text/vocab.h"

namespace nlidb {
namespace baselines {

/// A compact transformer encoder-decoder used for the "seq2seq ->
/// transformer" ablation row of Table II. The paper swaps its GRU
/// seq2seq for a transformer under the same annotation and observes a
/// performance drop (hypothesized: the large source/target vocabulary
/// asymmetry of the NLIDB task).
///
/// Architecture: sinusoidal positions, pre-norm-free (post-norm) blocks,
/// `num_layers` encoder blocks (self-attention + FFN) and decoder blocks
/// (causal self-attention + cross-attention + FFN), greedy/beam decode.
/// No copy mechanism — matching the paper's vanilla-transformer swap.
class TransformerTranslator : public core::TranslatorInterface {
 public:
  explicit TransformerTranslator(const core::ModelConfig& config,
                                 int num_layers = 2, int num_heads = 2);

  void AddVocabulary(const std::vector<std::string>& tokens) override;

  Var Loss(const std::vector<std::string>& source,
           const std::vector<std::string>& target) const override;

  std::vector<std::string> Translate(
      const std::vector<std::string>& source) const override;

  void CollectParameters(std::vector<Var>* out) const override;

  const text::Vocab& vocab() const { return vocab_; }

 private:
  struct AttentionHeads {
    std::unique_ptr<nn::Linear> wq, wk, wv, wo;
  };
  struct Block {
    AttentionHeads self_attn;
    AttentionHeads cross_attn;  // decoder only
    std::unique_ptr<nn::Linear> ffn1, ffn2;
    Var ln1_gain, ln1_bias, ln2_gain, ln2_bias, ln3_gain, ln3_bias;
  };

  Var Embed(const std::vector<int>& ids) const;
  Var Attend(const AttentionHeads& heads, const Var& query_states,
             const Var& memory_states, bool causal) const;
  Var EncoderForward(const std::vector<int>& ids) const;
  Var DecoderForward(const std::vector<int>& prefix_ids,
                     const Var& memory) const;  // returns [m, V] logits

  core::ModelConfig config_;
  int d_model_;
  int num_heads_;
  text::Vocab vocab_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Linear> output_proj_;
  std::vector<Block> encoder_;
  std::vector<Block> decoder_;
};

}  // namespace baselines
}  // namespace nlidb

#endif  // NLIDB_BASELINES_TRANSFORMER_H_
