#ifndef NLIDB_BASELINES_SKETCH_SLOT_FILLER_H_
#define NLIDB_BASELINES_SKETCH_SLOT_FILLER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "core/value_detector.h"
#include "data/example.h"
#include "schema/registry.h"

namespace nlidb {
namespace baselines {

/// A SQLNet/TypeSQL-style sketch-based slot filler: instead of decoding a
/// sequence, it fills the fixed sketch
///   SELECT $AGG $SELECT_COL WHERE ($COND_COL $OP $COND_VAL)*
/// slot by slot — aggregate from keyword features, select column from
/// context-free matching, conditions from type-aware value detection with
/// each value assigned to its highest-scoring column (no dependency-tree
/// resolution, no latent-structure translation).
///
/// This is the comparison system for the sketch rows of Table II and the
/// $COND_COL/$COND_VAL comparison of Sec. VII-A1.
class SketchSlotFiller {
 public:
  SketchSlotFiller(const core::ModelConfig& config,
                   std::shared_ptr<text::EmbeddingProvider> provider);

  SketchSlotFiller(const SketchSlotFiller&) = delete;
  SketchSlotFiller& operator=(const SketchSlotFiller&) = delete;

  /// Trains the type-aware value detector on the corpus.
  float Train(const data::Dataset& dataset);

  /// Fills the sketch for one question.
  StatusOr<sql::SelectQuery> Translate(const std::vector<std::string>& tokens,
                                       const sql::Table& table) const;

  /// Aggregate slot from keyword features (exposed for tests).
  static sql::Aggregate PredictAggregate(
      const std::vector<std::string>& tokens);

 private:
  core::ModelConfig config_;
  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<core::ValueDetector> value_detector_;
  std::unique_ptr<core::Annotator> matcher_;  // context-free matching only
  /// Content-keyed statistics via the same const lookup API the main
  /// pipeline uses (no more baseline-private mutable stats cache).
  schema::SchemaRegistry registry_;
};

}  // namespace baselines
}  // namespace nlidb

#endif  // NLIDB_BASELINES_SKETCH_SLOT_FILLER_H_
