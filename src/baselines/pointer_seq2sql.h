#ifndef NLIDB_BASELINES_POINTER_SEQ2SQL_H_
#define NLIDB_BASELINES_POINTER_SEQ2SQL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/seq2seq.h"
#include "data/example.h"

namespace nlidb {
namespace baselines {

/// A Seq2SQL-style baseline: the same encoder/decoder/copy stack as the
/// paper's translator, but WITHOUT annotation — the source is the raw
/// question plus the table header, and the target is the literal SQL
/// token sequence (column names and value words spelled out).
///
/// This isolates the paper's core claim: annotation (separating
/// data-specific components from latent semantic structure) is what buys
/// accuracy and transfer; the sequence model alone does not.
class PointerSeq2Sql {
 public:
  explicit PointerSeq2Sql(const core::ModelConfig& config);

  PointerSeq2Sql(const PointerSeq2Sql&) = delete;
  PointerSeq2Sql& operator=(const PointerSeq2Sql&) = delete;

  /// Raw source sequence: question tokens, a separator, then each column
  /// name's words separated by commas.
  static std::vector<std::string> BuildSource(
      const std::vector<std::string>& tokens, const sql::Schema& schema);

  /// Raw target: literal SQL tokens (no annotation symbols).
  static std::vector<std::string> BuildTarget(const sql::SelectQuery& query,
                                              const sql::Schema& schema);

  /// Trains on raw (question+header, SQL) pairs; returns final-epoch loss.
  float Train(const data::Dataset& dataset);

  /// Translates a question against a table.
  StatusOr<sql::SelectQuery> Translate(const std::vector<std::string>& tokens,
                                       const sql::Table& table) const;

  core::Seq2SeqTranslator& translator() { return *translator_; }

 private:
  core::ModelConfig config_;
  std::unique_ptr<core::Seq2SeqTranslator> translator_;
};

}  // namespace baselines
}  // namespace nlidb

#endif  // NLIDB_BASELINES_POINTER_SEQ2SQL_H_
