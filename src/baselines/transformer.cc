#include "baselines/transformer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace nlidb {
namespace baselines {

namespace {

constexpr int kVocabBudget = 1536;
constexpr float kNegInf = -1e9f;

Var MakeLnParam(int d, float value) {
  return MakeVar(Tensor::Full({d}, value), /*requires_grad=*/true);
}

/// Sinusoidal positional encodings as a constant [n, d] tensor.
Tensor PositionalEncoding(int n, int d) {
  Tensor pe({n, d});
  for (int pos = 0; pos < n; ++pos) {
    for (int i = 0; i < d; ++i) {
      const float angle =
          pos / std::pow(10000.0f, 2.0f * (i / 2) / static_cast<float>(d));
      pe(pos, i) = (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

}  // namespace

TransformerTranslator::TransformerTranslator(const core::ModelConfig& config,
                                             int num_layers, int num_heads)
    : config_(config), d_model_(config.word_dim), num_heads_(num_heads) {
  NLIDB_CHECK(d_model_ % num_heads_ == 0) << "d_model must split into heads";
  Rng rng(config.seed + 4);
  embedding_ = std::make_unique<nn::Embedding>(kVocabBudget, d_model_, rng);
  output_proj_ = std::make_unique<nn::Linear>(d_model_, kVocabBudget, rng);
  auto make_heads = [&]() {
    AttentionHeads h;
    h.wq = std::make_unique<nn::Linear>(d_model_, d_model_, rng, false);
    h.wk = std::make_unique<nn::Linear>(d_model_, d_model_, rng, false);
    h.wv = std::make_unique<nn::Linear>(d_model_, d_model_, rng, false);
    h.wo = std::make_unique<nn::Linear>(d_model_, d_model_, rng, false);
    return h;
  };
  auto make_block = [&](bool with_cross) {
    Block b;
    b.self_attn = make_heads();
    if (with_cross) b.cross_attn = make_heads();
    b.ffn1 = std::make_unique<nn::Linear>(d_model_, 4 * d_model_, rng);
    b.ffn2 = std::make_unique<nn::Linear>(4 * d_model_, d_model_, rng);
    b.ln1_gain = MakeLnParam(d_model_, 1.0f);
    b.ln1_bias = MakeLnParam(d_model_, 0.0f);
    b.ln2_gain = MakeLnParam(d_model_, 1.0f);
    b.ln2_bias = MakeLnParam(d_model_, 0.0f);
    if (with_cross) {
      b.ln3_gain = MakeLnParam(d_model_, 1.0f);
      b.ln3_bias = MakeLnParam(d_model_, 0.0f);
    }
    return b;
  };
  for (int l = 0; l < num_layers; ++l) {
    encoder_.push_back(make_block(false));
    decoder_.push_back(make_block(true));
  }
}

void TransformerTranslator::AddVocabulary(
    const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    if (vocab_.Contains(t)) continue;
    if (vocab_.size() >= kVocabBudget) break;
    vocab_.AddToken(t);
  }
}

Var TransformerTranslator::Embed(const std::vector<int>& ids) const {
  Var emb = embedding_->Forward(ids);
  Tensor pe = PositionalEncoding(static_cast<int>(ids.size()), d_model_);
  pe.Scale(0.1f);  // keep positions small relative to token embeddings
  return ops::Add(emb, MakeVar(std::move(pe)));
}

Var TransformerTranslator::Attend(const AttentionHeads& heads,
                                  const Var& query_states,
                                  const Var& memory_states,
                                  bool causal) const {
  const int dh = d_model_ / num_heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Var q = heads.wq->Forward(query_states);   // [m, d]
  Var k = heads.wk->Forward(memory_states);  // [n, d]
  Var v = heads.wv->Forward(memory_states);  // [n, d]
  const int m = q->value.rows();
  const int n = k->value.rows();
  std::vector<Var> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    Var qh = ops::SliceCols(q, h * dh, dh);
    Var kh = ops::SliceCols(k, h * dh, dh);
    Var vh = ops::SliceCols(v, h * dh, dh);
    Var scores = ops::ScalarMul(ops::MatMul(qh, ops::Transpose(kh)), scale);
    if (causal) {
      Tensor mask({m, n});
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          if (j > i) mask(i, j) = kNegInf;
        }
      }
      scores = ops::Add(scores, MakeVar(std::move(mask)));
    }
    Var attn = ops::SoftmaxRows(scores);
    head_outputs.push_back(ops::MatMul(attn, vh));
  }
  return heads.wo->Forward(ops::ConcatCols(head_outputs));
}

Var TransformerTranslator::EncoderForward(const std::vector<int>& ids) const {
  Var x = Embed(ids);
  for (const Block& b : encoder_) {
    Var attn = Attend(b.self_attn, x, x, /*causal=*/false);
    x = ops::LayerNormRows(ops::Add(x, attn), b.ln1_gain, b.ln1_bias);
    Var ffn = b.ffn2->Forward(ops::Relu(b.ffn1->Forward(x)));
    x = ops::LayerNormRows(ops::Add(x, ffn), b.ln2_gain, b.ln2_bias);
  }
  return x;
}

Var TransformerTranslator::DecoderForward(const std::vector<int>& prefix_ids,
                                          const Var& memory) const {
  Var x = Embed(prefix_ids);
  for (const Block& b : decoder_) {
    Var self_attn = Attend(b.self_attn, x, x, /*causal=*/true);
    x = ops::LayerNormRows(ops::Add(x, self_attn), b.ln1_gain, b.ln1_bias);
    Var cross = Attend(b.cross_attn, x, memory, /*causal=*/false);
    x = ops::LayerNormRows(ops::Add(x, cross), b.ln3_gain, b.ln3_bias);
    Var ffn = b.ffn2->Forward(ops::Relu(b.ffn1->Forward(x)));
    x = ops::LayerNormRows(ops::Add(x, ffn), b.ln2_gain, b.ln2_bias);
  }
  return output_proj_->Forward(x);  // [m, V]
}

Var TransformerTranslator::Loss(const std::vector<std::string>& source,
                                const std::vector<std::string>& target) const {
  Var memory = EncoderForward(vocab_.Encode(source));
  std::vector<int> target_ids = vocab_.Encode(target);
  target_ids.push_back(text::Vocab::kEos);
  std::vector<int> prefix = {text::Vocab::kBos};
  prefix.insert(prefix.end(), target_ids.begin(), target_ids.end() - 1);
  Var logits = DecoderForward(prefix, memory);
  Var total;
  for (size_t i = 0; i < target_ids.size(); ++i) {
    Var step = ops::CrossEntropyWithLogits(
        ops::PickRow(logits, static_cast<int>(i)), target_ids[i]);
    total = total ? ops::Add(total, step) : step;
  }
  return ops::ScalarMul(total, 1.0f / static_cast<float>(target_ids.size()));
}

std::vector<std::string> TransformerTranslator::Translate(
    const std::vector<std::string>& source) const {
  Var memory = EncoderForward(vocab_.Encode(source));
  std::vector<int> prefix = {text::Vocab::kBos};
  std::vector<std::string> out;
  const int vocab_size = vocab_.size();
  for (int step = 0; step < config_.max_decode_length; ++step) {
    Var logits = DecoderForward(prefix, memory);
    const int last = logits->value.rows() - 1;
    int best = text::Vocab::kEos;
    float best_score = -1e30f;
    for (int j = 0; j < vocab_size; ++j) {
      if (j == text::Vocab::kPad || j == text::Vocab::kBos ||
          j == text::Vocab::kUnk) {
        continue;
      }
      const float s = logits->value(last, j);
      if (s > best_score) {
        best_score = s;
        best = j;
      }
    }
    if (best == text::Vocab::kEos) break;
    out.push_back(vocab_.GetToken(best));
    prefix.push_back(best);
  }
  return out;
}

void TransformerTranslator::CollectParameters(std::vector<Var>* out) const {
  embedding_->CollectParameters(out);
  output_proj_->CollectParameters(out);
  auto collect_block = [&out](const Block& b, bool with_cross) {
    for (const auto* heads : {&b.self_attn, with_cross ? &b.cross_attn : nullptr}) {
      if (heads == nullptr || heads->wq == nullptr) continue;
      heads->wq->CollectParameters(out);
      heads->wk->CollectParameters(out);
      heads->wv->CollectParameters(out);
      heads->wo->CollectParameters(out);
    }
    b.ffn1->CollectParameters(out);
    b.ffn2->CollectParameters(out);
    out->push_back(b.ln1_gain);
    out->push_back(b.ln1_bias);
    out->push_back(b.ln2_gain);
    out->push_back(b.ln2_bias);
    if (with_cross) {
      out->push_back(b.ln3_gain);
      out->push_back(b.ln3_bias);
    }
  };
  for (const Block& b : encoder_) collect_block(b, false);
  for (const Block& b : decoder_) collect_block(b, true);
}

}  // namespace baselines
}  // namespace nlidb
