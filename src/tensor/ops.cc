#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"

namespace nlidb {
namespace ops {

namespace {

Var NewNode(Tensor value, std::vector<Var> parents,
            std::function<void(AutogradNode&)> backward_fn) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->backward_fn = std::move(backward_fn);
  return node;
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Tensor out = nlidb::MatMul(a->value, b->value);
  return NewNode(std::move(out), {a, b}, [](AutogradNode& n) {
    const Var& a = n.parents[0];
    const Var& b = n.parents[1];
    // dA += dOut * B^T ; dB += A^T * dOut
    if (Tensor* ga = GradSink(*a)) {
      MatMulTransposeBAccumulate(n.grad, b->value, *ga);
    }
    if (Tensor* gb = GradSink(*b)) {
      MatMulTransposeAAccumulate(a->value, n.grad, *gb);
    }
  });
}

Var Add(const Var& a, const Var& b) {
  NLIDB_CHECK(a->value.shape() == b->value.shape()) << "Add shape mismatch";
  Tensor out = a->value;
  out.Add(b->value);
  return NewNode(std::move(out), {a, b}, [](AutogradNode& n) {
    if (Tensor* ga = GradSink(*n.parents[0])) ga->Add(n.grad);
    if (Tensor* gb = GradSink(*n.parents[1])) gb->Add(n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  NLIDB_CHECK(a->value.shape() == b->value.shape()) << "Sub shape mismatch";
  Tensor out = a->value;
  out.Axpy(-1.0f, b->value);
  return NewNode(std::move(out), {a, b}, [](AutogradNode& n) {
    if (Tensor* ga = GradSink(*n.parents[0])) ga->Add(n.grad);
    if (Tensor* gb = GradSink(*n.parents[1])) gb->Axpy(-1.0f, n.grad);
  });
}

Var Mul(const Var& a, const Var& b) {
  NLIDB_CHECK(a->value.shape() == b->value.shape()) << "Mul shape mismatch";
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out.vec()[i] *= b->value.vec()[i];
  return NewNode(std::move(out), {a, b}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    Tensor* gb = GradSink(*n.parents[1]);
    const auto& av = n.parents[0]->value.vec();
    const auto& bv = n.parents[1]->value.vec();
    for (size_t i = 0; i < n.grad.size(); ++i) {
      if (ga) ga->vec()[i] += n.grad.vec()[i] * bv[i];
      if (gb) gb->vec()[i] += n.grad.vec()[i] * av[i];
    }
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  const int m = a->value.rows();
  const int nc = a->value.cols();
  NLIDB_CHECK(static_cast<int>(bias->value.size()) == nc)
      << "AddRowBroadcast width mismatch";
  Tensor out = a->value;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < nc; ++j) out(i, j) += bias->value(j);
  }
  return NewNode(std::move(out), {a, bias}, [](AutogradNode& n) {
    if (Tensor* ga = GradSink(*n.parents[0])) ga->Add(n.grad);
    if (Tensor* gb = GradSink(*n.parents[1])) {
      const int m = n.grad.rows();
      const int nc = n.grad.cols();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < nc; ++j) gb->vec()[j] += n.grad(i, j);
      }
    }
  });
}

Var ScalarMul(const Var& a, float s) {
  Tensor out = a->value;
  out.Scale(s);
  return NewNode(std::move(out), {a}, [s](AutogradNode& n) {
    if (Tensor* ga = GradSink(*n.parents[0])) ga->Axpy(s, n.grad);
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = a->value;
  for (float& x : out.vec()) x = 1.0f / (1.0f + std::exp(-x));
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      const float y = n.value.vec()[i];
      ga->vec()[i] += n.grad.vec()[i] * y * (1.0f - y);
    }
  });
}

Var Tanh(const Var& a) {
  Tensor out = a->value;
  for (float& x : out.vec()) x = std::tanh(x);
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      const float y = n.value.vec()[i];
      ga->vec()[i] += n.grad.vec()[i] * (1.0f - y * y);
    }
  });
}

Var Relu(const Var& a) {
  Tensor out = a->value;
  for (float& x : out.vec()) x = x > 0.0f ? x : 0.0f;
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      if (n.parents[0]->value.vec()[i] > 0.0f) {
        ga->vec()[i] += n.grad.vec()[i];
      }
    }
  });
}

Var Exp(const Var& a) {
  Tensor out = a->value;
  for (float& x : out.vec()) x = std::exp(std::min(x, 20.0f));
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      // d/dx exp(min(x,20)) = exp(x) below the clamp, 0 above it.
      if (n.parents[0]->value.vec()[i] < 20.0f) {
        ga->vec()[i] += n.grad.vec()[i] * n.value.vec()[i];
      }
    }
  });
}

Var SoftmaxRows(const Var& a) {
  NLIDB_CHECK(a->value.rank() == 2) << "SoftmaxRows requires rank 2";
  Tensor out = a->value;
  const int m = out.rows();
  const int nc = out.cols();
  for (int i = 0; i < m; ++i) {
    float mx = out(i, 0);
    for (int j = 1; j < nc; ++j) mx = std::max(mx, out(i, j));
    float sum = 0.0f;
    for (int j = 0; j < nc; ++j) {
      out(i, j) = std::exp(out(i, j) - mx);
      sum += out(i, j);
    }
    for (int j = 0; j < nc; ++j) out(i, j) /= sum;
  }
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    const int m = n.value.rows();
    const int nc = n.value.cols();
    for (int i = 0; i < m; ++i) {
      float dot = 0.0f;
      for (int j = 0; j < nc; ++j) dot += n.grad(i, j) * n.value(i, j);
      for (int j = 0; j < nc; ++j) {
        (*ga)(i, j) += n.value(i, j) * (n.grad(i, j) - dot);
      }
    }
  });
}

Var Transpose(const Var& a) {
  return NewNode(a->value.Transposed(), {a}, [](AutogradNode& n) {
    if (Tensor* ga = GradSink(*n.parents[0])) ga->Add(n.grad.Transposed());
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  NLIDB_CHECK(!parts.empty()) << "ConcatCols of nothing";
  const int m = parts[0]->value.rows();
  int total = 0;
  for (const auto& p : parts) {
    NLIDB_CHECK(p->value.rank() == 2 && p->value.rows() == m)
        << "ConcatCols row mismatch";
    total += p->value.cols();
  }
  Tensor out({m, total});
  int offset = 0;
  for (const auto& p : parts) {
    const int nc = p->value.cols();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < nc; ++j) out(i, offset + j) = p->value(i, j);
    }
    offset += nc;
  }
  return NewNode(std::move(out), parts, [](AutogradNode& n) {
    const int m = n.grad.rows();
    int offset = 0;
    for (auto& p : n.parents) {
      const int nc = p->value.cols();
      if (Tensor* gp = GradSink(*p)) {
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < nc; ++j) (*gp)(i, j) += n.grad(i, offset + j);
        }
      }
      offset += nc;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  NLIDB_CHECK(!parts.empty()) << "ConcatRows of nothing";
  const int nc = parts[0]->value.cols();
  int total = 0;
  for (const auto& p : parts) {
    NLIDB_CHECK(p->value.rank() == 2 && p->value.cols() == nc)
        << "ConcatRows col mismatch";
    total += p->value.rows();
  }
  Tensor out({total, nc});
  int offset = 0;
  for (const auto& p : parts) {
    for (int i = 0; i < p->value.rows(); ++i) {
      for (int j = 0; j < nc; ++j) out(offset + i, j) = p->value(i, j);
    }
    offset += p->value.rows();
  }
  return NewNode(std::move(out), parts, [](AutogradNode& n) {
    const int nc = n.grad.cols();
    int offset = 0;
    for (auto& p : n.parents) {
      if (Tensor* gp = GradSink(*p)) {
        for (int i = 0; i < p->value.rows(); ++i) {
          for (int j = 0; j < nc; ++j) (*gp)(i, j) += n.grad(offset + i, j);
        }
      }
      offset += p->value.rows();
    }
  });
}

Var PickRow(const Var& a, int i) {
  NLIDB_CHECK(a->value.rank() == 2 && i >= 0 && i < a->value.rows())
      << "PickRow out of range";
  Tensor out({1, a->value.cols()});
  for (int j = 0; j < a->value.cols(); ++j) out(0, j) = a->value(i, j);
  return NewNode(std::move(out), {a}, [i](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (int j = 0; j < n.grad.cols(); ++j) (*ga)(i, j) += n.grad(0, j);
  });
}

Var SliceCols(const Var& a, int start, int len) {
  NLIDB_CHECK(a->value.rank() == 2 && start >= 0 && len > 0 &&
              start + len <= a->value.cols())
      << "SliceCols out of range";
  const int m = a->value.rows();
  Tensor out({m, len});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < len; ++j) out(i, j) = a->value(i, start + j);
  }
  return NewNode(std::move(out), {a}, [start, len](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (int i = 0; i < n.grad.rows(); ++i) {
      for (int j = 0; j < len; ++j) (*ga)(i, start + j) += n.grad(i, j);
    }
  });
}

Var MeanRows(const Var& a) {
  NLIDB_CHECK(a->value.rank() == 2 && a->value.rows() > 0) << "MeanRows shape";
  const int m = a->value.rows();
  const int nc = a->value.cols();
  Tensor out({1, nc});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < nc; ++j) out(0, j) += a->value(i, j);
  }
  out.Scale(1.0f / static_cast<float>(m));
  return NewNode(std::move(out), {a}, [m](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    const float inv = 1.0f / static_cast<float>(m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n.grad.cols(); ++j) (*ga)(i, j) += inv * n.grad(0, j);
    }
  });
}

Var RowMax(const Var& a) {
  NLIDB_CHECK(a->value.rank() == 2 && a->value.cols() > 0) << "RowMax shape";
  const int m = a->value.rows();
  const int nc = a->value.cols();
  Tensor out({m, 1});
  auto argmax = std::make_shared<std::vector<int>>(m);
  for (int i = 0; i < m; ++i) {
    int best = 0;
    for (int j = 1; j < nc; ++j) {
      if (a->value(i, j) > a->value(i, best)) best = j;
    }
    (*argmax)[i] = best;
    out(i, 0) = a->value(i, best);
  }
  return NewNode(std::move(out), {a}, [argmax](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (int i = 0; i < n.grad.rows(); ++i) {
      (*ga)(i, (*argmax)[i]) += n.grad(i, 0);
    }
  });
}

Var RowMean(const Var& a) {
  NLIDB_CHECK(a->value.rank() == 2 && a->value.cols() > 0) << "RowMean shape";
  const int m = a->value.rows();
  const int nc = a->value.cols();
  const float inv = 1.0f / static_cast<float>(nc);
  Tensor out({m, 1});
  for (int i = 0; i < m; ++i) {
    float s = 0.0f;
    for (int j = 0; j < nc; ++j) s += a->value(i, j);
    out(i, 0) = s * inv;
  }
  return NewNode(std::move(out), {a}, [inv](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (int i = 0; i < n.grad.rows(); ++i) {
      const float g = n.grad(i, 0) * inv;
      for (int j = 0; j < ga->cols(); ++j) (*ga)(i, j) += g;
    }
  });
}

Var SumAll(const Var& a) {
  Tensor out({1});
  out(0) = a->value.Sum();
  return NewNode(std::move(out), {a}, [](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    const float g = n.grad(0);
    for (float& x : ga->vec()) x += g;
  });
}

Var MeanAll(const Var& a) {
  NLIDB_CHECK(!a->value.empty()) << "MeanAll of empty tensor";
  const float inv = 1.0f / static_cast<float>(a->value.size());
  Tensor out({1});
  out(0) = a->value.Sum() * inv;
  return NewNode(std::move(out), {a}, [inv](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    const float g = n.grad(0) * inv;
    for (float& x : ga->vec()) x += g;
  });
}

Var EmbeddingLookup(const Var& weight, const std::vector<int>& indices) {
  NLIDB_CHECK(weight->value.rank() == 2) << "EmbeddingLookup weight rank";
  const int vocab = weight->value.rows();
  const int d = weight->value.cols();
  Tensor out({static_cast<int>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    NLIDB_CHECK(indices[i] >= 0 && indices[i] < vocab)
        << "embedding index " << indices[i] << " out of [0," << vocab << ")";
    for (int j = 0; j < d; ++j) out(static_cast<int>(i), j) = weight->value(indices[i], j);
  }
  return NewNode(std::move(out), {weight}, [indices](AutogradNode& n) {
    Tensor* gw = GradSink(*n.parents[0]);
    if (!gw) return;
    const int d = n.grad.cols();
    for (size_t i = 0; i < indices.size(); ++i) {
      for (int j = 0; j < d; ++j) {
        (*gw)(indices[i], j) += n.grad(static_cast<int>(i), j);
      }
    }
  });
}

Var Conv1dMean(const Var& input, const Var& weight, const Var& bias, int k) {
  NLIDB_CHECK(input->value.rank() == 2) << "Conv1dMean input rank";
  const int len = input->value.rows();
  const int d_in = input->value.cols();
  NLIDB_CHECK(weight->value.rows() == k * d_in) << "Conv1dMean weight shape";
  const int d_out = weight->value.cols();
  // Zero-pad so that at least one slice exists (paper: "we pad with zeros
  // so that at least one slice is available").
  const int padded_len = std::max(len, k);
  const int num_slices = padded_len - k + 1;
  Tensor out({1, d_out});
  for (int s = 0; s < num_slices; ++s) {
    for (int r = 0; r < k; ++r) {
      const int row = s + r;
      if (row >= len) continue;  // zero padding contributes nothing
      for (int c = 0; c < d_in; ++c) {
        const float x = input->value(row, c);
        if (x == 0.0f) continue;
        const int wrow = r * d_in + c;
        for (int o = 0; o < d_out; ++o) out(0, o) += x * weight->value(wrow, o);
      }
    }
  }
  const float inv = 1.0f / static_cast<float>(num_slices);
  for (int o = 0; o < d_out; ++o) out(0, o) = out(0, o) * inv + bias->value(o);
  return NewNode(
      std::move(out), {input, weight, bias},
      [k, len, d_in, d_out, num_slices, inv](AutogradNode& n) {
        Tensor* gin = GradSink(*n.parents[0]);
        Tensor* gw = GradSink(*n.parents[1]);
        Tensor* gb = GradSink(*n.parents[2]);
        const Tensor& in = n.parents[0]->value;
        const Tensor& w = n.parents[1]->value;
        if (gb) {
          for (int o = 0; o < d_out; ++o) gb->vec()[o] += n.grad(0, o);
        }
        if (!gin && !gw) return;
        for (int s = 0; s < num_slices; ++s) {
          for (int r = 0; r < k; ++r) {
            const int row = s + r;
            if (row >= len) continue;
            for (int c = 0; c < d_in; ++c) {
              const int wrow = r * d_in + c;
              float gx = 0.0f;
              for (int o = 0; o < d_out; ++o) {
                const float go = n.grad(0, o) * inv;
                gx += go * w(wrow, o);
                if (gw) (*gw)(wrow, o) += go * in(row, c);
              }
              if (gin) (*gin)(row, c) += gx;
            }
          }
        }
      });
}

Var LayerNormRows(const Var& a, const Var& gain, const Var& bias) {
  NLIDB_CHECK(a->value.rank() == 2) << "LayerNormRows rank";
  const int m = a->value.rows();
  const int nc = a->value.cols();
  NLIDB_CHECK(static_cast<int>(gain->value.size()) == nc &&
              static_cast<int>(bias->value.size()) == nc)
      << "LayerNormRows gain/bias width";
  constexpr float kEps = 1e-5f;
  Tensor out({m, nc});
  auto mean = std::make_shared<std::vector<float>>(m);
  auto inv_std = std::make_shared<std::vector<float>>(m);
  for (int i = 0; i < m; ++i) {
    float mu = 0.0f;
    for (int j = 0; j < nc; ++j) mu += a->value(i, j);
    mu /= nc;
    float var = 0.0f;
    for (int j = 0; j < nc; ++j) {
      const float d = a->value(i, j) - mu;
      var += d * d;
    }
    var /= nc;
    (*mean)[i] = mu;
    (*inv_std)[i] = 1.0f / std::sqrt(var + kEps);
    for (int j = 0; j < nc; ++j) {
      out(i, j) = gain->value(j) * (a->value(i, j) - mu) * (*inv_std)[i] +
                  bias->value(j);
    }
  }
  return NewNode(std::move(out), {a, gain, bias},
                 [mean, inv_std](AutogradNode& n) {
    const Var& a = n.parents[0];
    const Var& gain = n.parents[1];
    Tensor* ga = GradSink(*a);
    Tensor* gg = GradSink(*n.parents[1]);
    Tensor* gb = GradSink(*n.parents[2]);
    if (!ga && !gg && !gb) return;
    const int m = n.grad.rows();
    const int nc = n.grad.cols();
    for (int i = 0; i < m; ++i) {
      const float mu = (*mean)[i];
      const float istd = (*inv_std)[i];
      // dL/dxhat_j = g_j * dL/dy_j ; standard layer-norm backward.
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (int j = 0; j < nc; ++j) {
        const float xhat = (a->value(i, j) - mu) * istd;
        const float dy = n.grad(i, j);
        if (gg) gg->vec()[j] += dy * xhat;
        if (gb) gb->vec()[j] += dy;
        const float dxhat = dy * gain->value(j);
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
      }
      if (!ga) continue;
      for (int j = 0; j < nc; ++j) {
        const float xhat = (a->value(i, j) - mu) * istd;
        const float dxhat = n.grad(i, j) * gain->value(j);
        (*ga)(i, j) += istd * (dxhat - (sum_dxhat + xhat * sum_dxhat_xhat) /
                                           static_cast<float>(nc));
      }
    }
  });
}

Var Dropout(const Var& a, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return a;
  const float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(a->value.size());
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    (*mask)[i] = rng.NextBool(keep) ? 1.0f / keep : 0.0f;
    out.vec()[i] *= (*mask)[i];
  }
  return NewNode(std::move(out), {a}, [mask](AutogradNode& n) {
    Tensor* ga = GradSink(*n.parents[0]);
    if (!ga) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      ga->vec()[i] += n.grad.vec()[i] * (*mask)[i];
    }
  });
}

Var ScatterSumCols(const Var& values, const std::vector<int>& col_indices,
                   int width) {
  NLIDB_CHECK(values->value.rank() == 2 && values->value.rows() == 1)
      << "ScatterSumCols expects [1,n] values";
  NLIDB_CHECK(static_cast<size_t>(values->value.cols()) == col_indices.size())
      << "ScatterSumCols index count mismatch";
  Tensor out({1, width});
  for (size_t j = 0; j < col_indices.size(); ++j) {
    const int idx = col_indices[j];
    NLIDB_CHECK(idx >= 0 && idx < width) << "ScatterSumCols index range";
    out(0, idx) += values->value(0, static_cast<int>(j));
  }
  return NewNode(std::move(out), {values}, [col_indices](AutogradNode& n) {
    Tensor* gv = GradSink(*n.parents[0]);
    if (!gv) return;
    for (size_t j = 0; j < col_indices.size(); ++j) {
      (*gv)(0, static_cast<int>(j)) += n.grad(0, col_indices[j]);
    }
  });
}

Var BceWithLogits(const Var& logit, float target) {
  NLIDB_CHECK(logit->value.size() == 1) << "BceWithLogits expects one logit";
  const float x = logit->value.vec()[0];
  // Numerically stable: max(x,0) - x*t + log(1 + exp(-|x|)).
  const float loss = std::max(x, 0.0f) - x * target +
                     std::log1p(std::exp(-std::fabs(x)));
  Tensor out({1});
  out(0) = loss;
  return NewNode(std::move(out), {logit}, [target](AutogradNode& n) {
    Tensor* gl = GradSink(*n.parents[0]);
    if (!gl) return;
    const float x = n.parents[0]->value.vec()[0];
    const float sigma = 1.0f / (1.0f + std::exp(-x));
    gl->vec()[0] += n.grad(0) * (sigma - target);
  });
}

Var CrossEntropyWithLogits(const Var& logits, int index) {
  NLIDB_CHECK(logits->value.rank() == 2 && logits->value.rows() == 1)
      << "CrossEntropyWithLogits expects [1,n]";
  const int nc = logits->value.cols();
  NLIDB_CHECK(index >= 0 && index < nc) << "CE index out of range";
  float mx = logits->value(0, 0);
  for (int j = 1; j < nc; ++j) mx = std::max(mx, logits->value(0, j));
  float sum = 0.0f;
  for (int j = 0; j < nc; ++j) sum += std::exp(logits->value(0, j) - mx);
  const float log_z = mx + std::log(sum);
  Tensor out({1});
  out(0) = log_z - logits->value(0, index);
  return NewNode(std::move(out), {logits}, [index, log_z](AutogradNode& n) {
    Tensor* gl = GradSink(*n.parents[0]);
    if (!gl) return;
    const int nc = n.parents[0]->value.cols();
    const float g = n.grad(0);
    for (int j = 0; j < nc; ++j) {
      const float p = std::exp(n.parents[0]->value(0, j) - log_z);
      (*gl)(0, j) += g * (p - (j == index ? 1.0f : 0.0f));
    }
  });
}

Var NegLogNormalized(const Var& scores, int index) {
  NLIDB_CHECK(scores->value.rank() == 2 && scores->value.rows() == 1)
      << "NegLogNormalized expects [1,n]";
  const int nc = scores->value.cols();
  NLIDB_CHECK(index >= 0 && index < nc) << "NegLogNormalized index range";
  const float eps = 1e-9f;
  float sum = 0.0f;
  for (int j = 0; j < nc; ++j) sum += scores->value(0, j);
  const float si = scores->value(0, index);
  Tensor out({1});
  out(0) = std::log(sum + eps) - std::log(si + eps);
  return NewNode(std::move(out), {scores}, [index, sum, si, eps](AutogradNode& n) {
    Tensor* gs = GradSink(*n.parents[0]);
    if (!gs) return;
    const int nc = n.parents[0]->value.cols();
    const float g = n.grad(0);
    const float inv_sum = 1.0f / (sum + eps);
    for (int j = 0; j < nc; ++j) {
      float d = inv_sum;
      if (j == index) d -= 1.0f / (si + eps);
      (*gs)(0, j) += g * d;
    }
  });
}

}  // namespace ops
}  // namespace nlidb
