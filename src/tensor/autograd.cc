#include "tensor/autograd.h"

#include <unordered_set>

#include "common/logging.h"

namespace nlidb {

Tensor& AutogradNode::EnsureGrad() {
  if (grad.shape() != value.shape()) {
    grad = Tensor::Zeros(value.shape());
  }
  return grad;
}

void AutogradNode::AccumulateGrad(const Tensor& g) {
  EnsureGrad().Add(g);
}

Var MakeVar(Tensor value, bool requires_grad) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

namespace {

// Iterative post-order DFS; recursion would overflow on long RNN chains.
void TopoSort(const Var& root, std::vector<AutogradNode*>& order) {
  std::unordered_set<AutogradNode*> visited;
  std::vector<std::pair<AutogradNode*, size_t>> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      AutogradNode* child = node->parents[next_child].get();
      ++next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  NLIDB_CHECK(root != nullptr) << "Backward on null var";
  std::vector<AutogradNode*> order;
  TopoSort(root, order);
  // Mark which nodes need gradients: a node needs a gradient if it is a
  // requires_grad leaf or any ancestor-path reaches one. Since `order` is
  // post-order (parents before children in the vector), propagate forward.
  for (AutogradNode* node : order) {
    if (!node->requires_grad) {
      for (const auto& p : node->parents) {
        if (p && p->requires_grad) {
          node->requires_grad = true;
          break;
        }
      }
    }
  }
  if (!root->requires_grad) return;
  root->EnsureGrad().Fill(1.0f);
  // Reverse topological order: children (outputs) before parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    AutogradNode* node = *it;
    if (node->requires_grad && node->backward_fn) {
      node->backward_fn(*node);
    }
  }
}

void ZeroGrad(const std::vector<Var>& vars) {
  for (const auto& v : vars) {
    if (v && !v->grad.empty()) v->grad.Fill(0.0f);
  }
}

namespace {
thread_local bool tls_inference_grad = false;
}  // namespace

InferenceGradScope::InferenceGradScope() : prev_(tls_inference_grad) {
  tls_inference_grad = true;
}

InferenceGradScope::~InferenceGradScope() { tls_inference_grad = prev_; }

bool InferenceGradScope::Active() { return tls_inference_grad; }

Tensor* GradSink(AutogradNode& node) {
  if (tls_inference_grad && node.backward_fn == nullptr) return nullptr;
  return &node.EnsureGrad();
}

}  // namespace nlidb
