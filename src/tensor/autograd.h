#ifndef NLIDB_TENSOR_AUTOGRAD_H_
#define NLIDB_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace nlidb {

/// Reverse-mode automatic differentiation over `Tensor`s.
///
/// A computation builds a dynamic DAG of `AutogradNode`s (one per op
/// output). `Backward(root)` topologically sorts the DAG and runs each
/// node's backward closure, accumulating gradients into `grad` fields.
/// Graphs are rebuilt per example (define-by-run), exactly like the
/// PyTorch programs the paper's models were written in.
class AutogradNode {
 public:
  Tensor value;
  Tensor grad;  // allocated lazily to value's shape on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<AutogradNode>> parents;
  /// Accumulates into parents' grads given this node's grad. Null for leaves.
  std::function<void(AutogradNode&)> backward_fn;

  /// Ensures `grad` is allocated (zero) with value's shape.
  Tensor& EnsureGrad();
  /// Adds `g` into this node's gradient.
  void AccumulateGrad(const Tensor& g);
};

using Var = std::shared_ptr<AutogradNode>;

/// Wraps a tensor as a graph leaf. Parameters pass requires_grad = true.
Var MakeVar(Tensor value, bool requires_grad = false);

/// Runs reverse-mode differentiation from `root`, seeding d(root)/d(root)
/// with ones (for scalar losses root is [1]). Safe to call on any graph;
/// nodes without requires_grad in their ancestry are skipped.
void Backward(const Var& root);

/// Clears gradients on the given variables (typically parameters between
/// steps; graph intermediates are freed with the graph).
void ZeroGrad(const std::vector<Var>& vars);

/// Marks the current thread as running an inference-time backward pass
/// (adversarial influence probing, DESIGN.md "Performance architecture").
///
/// While a scope is active on a thread, GradSink() returns nullptr for
/// graph leaves (nodes with no backward_fn: parameters and constant
/// inputs), so backward closures skip writing weight gradients entirely.
/// That makes concurrent Backward() calls over graphs that share
/// parameter nodes race-free — the only shared state written during a
/// training backward is exactly those leaf grads — and skips the dW GEMMs
/// influence probing never reads. Intermediate nodes (including the
/// embedding activations whose grads the influence profile reads) are
/// per-graph and still accumulate normally.
class [[nodiscard]] InferenceGradScope {
 public:
  InferenceGradScope();
  ~InferenceGradScope();
  InferenceGradScope(const InferenceGradScope&) = delete;
  InferenceGradScope& operator=(const InferenceGradScope&) = delete;

  /// True when the calling thread is inside an InferenceGradScope.
  [[nodiscard]] static bool Active();

 private:
  bool prev_;
};

/// The gradient buffer a backward closure should accumulate into for
/// `node`, or nullptr when the write (and the work producing it) should
/// be skipped — see InferenceGradScope. Closures must route every
/// parent-grad write through this; [[nodiscard]] because calling it and
/// then writing `node.grad` directly would reintroduce exactly the
/// shared-parameter race the scope exists to prevent.
[[nodiscard]] Tensor* GradSink(AutogradNode& node);

}  // namespace nlidb

#endif  // NLIDB_TENSOR_AUTOGRAD_H_
