#ifndef NLIDB_TENSOR_OPS_H_
#define NLIDB_TENSOR_OPS_H_

#include <vector>

#include "tensor/autograd.h"

namespace nlidb {
/// Differentiable tensor operations. Each function appends one node to the
/// autograd DAG. Unless stated otherwise, rank-2 operands are expected and
/// shapes are validated with process-fatal checks (shape errors are
/// programming errors, not runtime conditions).
namespace ops {

/// Matrix product: [m,k] x [k,n] -> [m,n].
Var MatMul(const Var& a, const Var& b);

/// Elementwise sum of same-shape tensors.
Var Add(const Var& a, const Var& b);

/// Elementwise difference of same-shape tensors.
Var Sub(const Var& a, const Var& b);

/// Elementwise (Hadamard) product of same-shape tensors.
Var Mul(const Var& a, const Var& b);

/// Adds rank-1 (or [1,n]) `bias` to every row of [m,n] `a`.
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Multiplies every entry by the constant `s`.
Var ScalarMul(const Var& a, float s);

/// Elementwise activations.
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
/// exp(min(x, 20)): clamped to keep the copy-mechanism scores finite.
Var Exp(const Var& a);

/// Row-wise softmax of [m,n].
Var SoftmaxRows(const Var& a);

/// Transpose of a rank-2 tensor.
Var Transpose(const Var& a);

/// Concatenates [m, n_i] blocks along columns -> [m, sum n_i].
Var ConcatCols(const std::vector<Var>& parts);

/// Concatenates [m_i, n] blocks along rows -> [sum m_i, n].
Var ConcatRows(const std::vector<Var>& parts);

/// Copies row `i` of [m,n] into a [1,n] tensor (differentiable slice).
Var PickRow(const Var& a, int i);

/// Copies columns [start, start+len) of [m,n] into [m,len].
Var SliceCols(const Var& a, int start, int len);

/// Mean over rows of [m,n] -> [1,n].
Var MeanRows(const Var& a);

/// Row-wise max of [m,n] -> [m,1]; gradient flows to each row's argmax.
Var RowMax(const Var& a);

/// Row-wise mean of [m,n] -> [m,1].
Var RowMean(const Var& a);

/// Sum of all entries -> [1].
Var SumAll(const Var& a);

/// Mean of all entries -> [1].
Var MeanAll(const Var& a);

/// Gathers rows of `weight` ([vocab, d]) at `indices` -> [n, d].
/// Backward scatter-adds into the weight gradient (sparse update).
Var EmbeddingLookup(const Var& weight, const std::vector<int>& indices);

/// 1-D convolution over a [len, d_in] sequence with kernel width `k`
/// followed by elementwise average over all slice outputs -> [1, d_out].
/// `weight` is [k*d_in, d_out], `bias` is [d_out]. The input is
/// zero-padded so at least one slice exists (paper Sec. IV-B, Fig. 4).
Var Conv1dMean(const Var& input, const Var& weight, const Var& bias, int k);

/// Per-row layer normalization with learnable gain/bias:
///   y_ij = gain_j * (x_ij - mean_i) / sqrt(var_i + eps) + bias_j.
Var LayerNormRows(const Var& a, const Var& gain, const Var& bias);

/// Inverted-dropout mask applied when `train` is true; identity otherwise.
Var Dropout(const Var& a, float p, Rng& rng, bool train);

/// Scatter-add of a [1,n] score row into a [1,width] vector at the given
/// column indices (duplicates accumulate). Used by the copy mechanism to
/// route attention energies onto vocabulary positions.
Var ScatterSumCols(const Var& values, const std::vector<int>& col_indices,
                   int width);

/// Binary cross-entropy with logits for a single [1,1] logit -> [1] loss.
Var BceWithLogits(const Var& logit, float target);

/// -log softmax(logits)[index] for [1,n] logits -> [1] loss.
Var CrossEntropyWithLogits(const Var& logits, int index);

/// -log(scores[index] / sum(scores)) for a [1,n] row of positive scores.
/// This is the loss used with the paper's additive copy mechanism, where
/// scores = exp(decoder logits) + copy mass (already exponentiated).
Var NegLogNormalized(const Var& scores, int index);

}  // namespace ops
}  // namespace nlidb

#endif  // NLIDB_TENSOR_OPS_H_
