#ifndef NLIDB_TENSOR_GEMM_KERNELS_H_
#define NLIDB_TENSOR_GEMM_KERNELS_H_

// Row-range GEMM kernel entry points, compiled once per ISA tier.
//
// The tiled micro-kernels in gemm_tiles.h are instantiated by two
// translation units: gemm_kernels_base.cc (the toolchain's default
// target, runs anywhere the binary does) and gemm_kernels_avx2.cc
// (-march=x86-64-v3 where the compiler supports it, selected at runtime
// only when the CPU reports AVX2). Both TUs build with -ffp-contract=off,
// so neither tier fuses multiply-adds and both produce bitwise-identical
// results — which machine runs the model never changes its outputs.
//
// Each function processes output rows [ib, ie) only, so callers can
// partition rows across the thread pool without further coordination.

namespace nlidb {
namespace gemm {

// out[ib..ie) += a[ib..ie) * b          (a [m,k], b [k,n], out [m,n])
using RowsABFn = void (*)(const float* a, const float* b, float* out, int ib,
                          int ie, int k, int n);
// out[ib..ie) += a[ib..ie) * b^T        (a [m,k], b [n,k], out [m,n])
using RowsABtFn = void (*)(const float* a, const float* b, float* out, int ib,
                           int ie, int k, int n);
// out[ib..ie) += (a^T)[ib..ie) * b      (a [k,m], b [k,n], out [m,n])
using RowsAtBFn = void (*)(const float* a, const float* b, float* out, int ib,
                           int ie, int k, int m, int n);

namespace base {
void RowsAB(const float* a, const float* b, float* out, int ib, int ie, int k,
            int n);
void RowsABt(const float* a, const float* b, float* out, int ib, int ie, int k,
             int n);
void RowsAtB(const float* a, const float* b, float* out, int ib, int ie, int k,
             int m, int n);
}  // namespace base

namespace avx2 {
/// True only when this TU was compiled at x86-64-v3 AND the running CPU
/// supports AVX2; the base tier is used otherwise.
[[nodiscard]] bool Available();
void RowsAB(const float* a, const float* b, float* out, int ib, int ie, int k,
            int n);
void RowsABt(const float* a, const float* b, float* out, int ib, int ie, int k,
             int n);
void RowsAtB(const float* a, const float* b, float* out, int ib, int ie, int k,
             int m, int n);
}  // namespace avx2

struct RowKernels {
  RowsABFn rows_ab;
  RowsABtFn rows_abt;
  RowsAtBFn rows_atb;
};

/// Kernel tier selection. `kAuto` picks the best tier the CPU supports;
/// the explicit tiers exist so correctness harnesses (golden traces,
/// differential fuzzers) can pin or sweep tiers. Requesting `kAvx2` on a
/// machine without AVX2 falls back to `kBase`.
enum class Tier { kAuto, kBase, kAvx2 };

/// Forces the tier used by `Kernels()`. Also settable through the
/// NLIDB_GEMM_TIER environment variable (base | avx2 | auto), read once
/// before the first kernel dispatch; SetTier overrides it. Safe to call
/// concurrently with kernel dispatch (the selection is atomic), but for
/// reproducible output switch tiers only between inference requests.
void SetTier(Tier tier);

/// The tier `Kernels()` currently resolves to: always kBase or kAvx2.
/// The requested tier lives in a std::atomic (tensor.cc RequestedTier),
/// which is the only sanctioned lock-free shared state in the kernel
/// layer: the dispatch read is relaxed because tier choice never guards
/// other memory — both tables compute bitwise-identical results.
[[nodiscard]] Tier ActiveTier();

/// The kernel table for the active tier.
[[nodiscard]] const RowKernels& Kernels();

}  // namespace gemm
}  // namespace nlidb

#endif  // NLIDB_TENSOR_GEMM_KERNELS_H_
