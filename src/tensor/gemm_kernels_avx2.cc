// AVX2 kernel tier: compiled at -march=x86-64-v3 when the compiler
// supports it (CMakeLists.txt), with -ffp-contract=off so the FMA units
// are never used — vector lanes round exactly like the baseline tier and
// results stay bitwise identical across machines. Selected at runtime by
// Available(); when this TU is built without AVX2 (non-x86 target or old
// compiler) it degrades to thin forwarders onto the base tier.

#include "tensor/gemm_kernels.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include "tensor/gemm_tiles.h"

#define NLIDB_GEMM_NS avx2
#define NLIDB_GEMM_VEC VecF8
#define NLIDB_GEMM_MR 6
#include "tensor/gemm_kernels.inc"

namespace nlidb {
namespace gemm {
namespace avx2 {

bool Available() { return __builtin_cpu_supports("avx2"); }

}  // namespace avx2
}  // namespace gemm
}  // namespace nlidb

#else  // !(__x86_64__ && __AVX2__)

namespace nlidb {
namespace gemm {
namespace avx2 {

bool Available() { return false; }

void RowsAB(const float* a, const float* b, float* out, int ib, int ie, int k,
            int n) {
  base::RowsAB(a, b, out, ib, ie, k, n);
}

void RowsABt(const float* a, const float* b, float* out, int ib, int ie, int k,
             int n) {
  base::RowsABt(a, b, out, ib, ie, k, n);
}

void RowsAtB(const float* a, const float* b, float* out, int ib, int ie, int k,
             int m, int n) {
  base::RowsAtB(a, b, out, ib, ie, k, m, n);
}

}  // namespace avx2
}  // namespace gemm
}  // namespace nlidb

#endif
