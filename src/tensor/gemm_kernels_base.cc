// Baseline kernel tier: compiled at the toolchain's default target so it
// runs on any machine the binary does. Build flags (see CMakeLists.txt):
// -O3 -funroll-loops -ffp-contract=off.

#include "tensor/gemm_kernels.h"  // IWYU pragma: keep
#include "tensor/gemm_tiles.h"

#define NLIDB_GEMM_NS base
#define NLIDB_GEMM_VEC VecF4
#define NLIDB_GEMM_MR 4
#include "tensor/gemm_kernels.inc"
