// Scalar reference GEMM kernels: the pre-substrate naive loops, preserved
// verbatim in their own translation unit with the project's default
// compile flags. They define the numeric ground truth the tiled kernels
// must match bitwise (tests/tensor/gemm_test.cc) and the baseline
// bench_micro_substrate measures speedup against.

#include "common/logging.h"
#include "tensor/tensor.h"

namespace nlidb {

void MatMulAccumulateReference(const Tensor& a, const Tensor& b, Tensor& out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  NLIDB_CHECK(out.rows() == m && out.cols() == n) << "MatMulAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void MatMulTransposeAAccumulateReference(const Tensor& a, const Tensor& b,
                                         Tensor& out) {
  const int k = a.rows();
  const int m = a.cols();
  const int n = b.cols();
  NLIDB_CHECK(b.rows() == k && out.rows() == m && out.cols() == n)
      << "MatMulTransposeAAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int i = 0; i < m; ++i) {
      const float v = arow[i];
      if (v == 0.0f) continue;
      float* orow = po + i * n;
      for (int j = 0; j < n; ++j) orow[j] += v * brow[j];
    }
  }
}

void MatMulTransposeBAccumulateReference(const Tensor& a, const Tensor& b,
                                         Tensor& out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  NLIDB_CHECK(b.cols() == k && out.rows() == m && out.cols() == n)
      << "MatMulTransposeBAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float dot = 0.0f;
      for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      po[i * n + j] += dot;
    }
  }
}

}  // namespace nlidb
