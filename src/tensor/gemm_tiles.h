#ifndef NLIDB_TENSOR_GEMM_TILES_H_
#define NLIDB_TENSOR_GEMM_TILES_H_

// Register-blocked GEMM micro-tiles shared by the per-ISA kernel
// translation units (gemm_kernels_base.cc / gemm_kernels_avx2.cc — see
// gemm_kernels.inc). Header-only so each TU instantiates the tiles at
// its own target ISA and register budget.
//
// The broadcast tiles (AB / AtB) use GCC/Clang vector extensions rather
// than relying on auto-vectorization: with runtime strides GCC refuses
// to keep the accumulator tile in registers, collapsing the kernel to
// shuffle-heavy scalar code (~10x slower). An explicit `Vec` accumulator
// array pins the tile in vector registers; loads/stores go through
// __builtin_memcpy, which compiles to single unaligned vector moves.
//
// Determinism contract: every output element receives its k partial
// products in increasing-k order, with one rounding per multiply-add.
// Vector lanes are independent elements, the TUs compile with
// -ffp-contract=off so no ISA fuses mul+add into an FMA, and therefore
// results are bitwise identical to the scalar reference kernels
// regardless of tile shape, vector width, or the row partition chosen
// by the thread pool.

namespace nlidb {
namespace gemm {

/// 128-bit lane: available on every x86-64 (SSE2 is baseline) and on
/// AArch64 NEON; the base-tier tile type.
typedef float VecF4 __attribute__((vector_size(16)));
/// 256-bit lane for the AVX2 tier (GCC splits it into two 128-bit ops
/// when the target lacks AVX, so the type itself is always legal).
typedef float VecF8 __attribute__((vector_size(32)));

template <typename Vec>
inline Vec LoadVec(const float* p) {
  Vec v;
  __builtin_memcpy(&v, p, sizeof(Vec));
  return v;
}

template <typename Vec>
inline void StoreVec(float* p, Vec v) {
  __builtin_memcpy(p, &v, sizeof(Vec));
}

/// out[i0..i0+MR) += a[i0..i0+MR) * b for row-major a [m,k], b [k,n]:
/// MR output rows held in an MR x V register tile of Vec-wide column
/// panels. The b row is loaded once per (k, panel) and reused across the
/// MR rows, turning the reference kernel's 2 loads + 1 store per
/// multiply-add into ~1/MR of that.
template <typename Vec, int MR, int V>
inline void MicroPanelAB(const float* a, const float* b, float* out, int i0,
                         int k, int n) {
  constexpr int W = static_cast<int>(sizeof(Vec) / sizeof(float));
  constexpr int NR = W * V;
  int j = 0;
  for (; j + NR <= n; j += NR) {
    Vec acc[MR][V];
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < V; ++v) {
        acc[r][v] = LoadVec<Vec>(out + (i0 + r) * n + j + v * W);
      }
    }
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j;
      Vec bv[V];
      for (int v = 0; v < V; ++v) bv[v] = LoadVec<Vec>(brow + v * W);
      for (int r = 0; r < MR; ++r) {
        const float av = a[(i0 + r) * k + kk];  // broadcast across lanes
        for (int v = 0; v < V; ++v) acc[r][v] += bv[v] * av;
      }
    }
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < V; ++v) {
        StoreVec<Vec>(out + (i0 + r) * n + j + v * W, acc[r][v]);
      }
    }
  }
  // Column tail: scalar accumulators, same increasing-k order.
  for (; j < n; ++j) {
    float acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = out[(i0 + r) * n + j];
    for (int kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      for (int r = 0; r < MR; ++r) acc[r] += a[(i0 + r) * k + kk] * bv;
    }
    for (int r = 0; r < MR; ++r) out[(i0 + r) * n + j] = acc[r];
  }
}

/// AB^T via panel packing: `bp` is an [k, NR] packed copy of b's rows
/// [jo, jo+NR) (see PackBtPanel), which turns the transposed product
/// into the same broadcast tile as MicroPanelAB. Each output element's
/// partials still accumulate in increasing-k order into a zeroed
/// register chain that is added to `out` once at the end — exactly the
/// reference kernel's `acc = 0; for k: acc += ...; out += acc` order, so
/// the result is bitwise identical.
template <typename Vec, int MR, int V>
inline void MicroPanelABtPacked(const float* a, const float* bp, float* out,
                                int i0, int jo, int k, int n) {
  constexpr int W = static_cast<int>(sizeof(Vec) / sizeof(float));
  constexpr int NR = W * V;
  Vec acc[MR][V];
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < V; ++v) acc[r][v] = Vec{};
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * NR;
    Vec bv[V];
    for (int v = 0; v < V; ++v) bv[v] = LoadVec<Vec>(brow + v * W);
    for (int r = 0; r < MR; ++r) {
      const float av = a[(i0 + r) * k + kk];
      for (int v = 0; v < V; ++v) acc[r][v] += bv[v] * av;
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < V; ++v) {
      float* op = out + (i0 + r) * n + jo + v * W;
      StoreVec<Vec>(op, LoadVec<Vec>(op) + acc[r][v]);
    }
  }
}

/// Packs b rows [jo, jo+NR) of a row-major [n, k] matrix into `bp` as
/// [k, NR]: bp[kk*NR + c] = b[(jo+c)*k + kk]. Written column-by-column so
/// every read is a contiguous b row.
inline void PackBtPanel(const float* b, float* bp, int jo, int k, int nr) {
  for (int c = 0; c < nr; ++c) {
    const float* brow = b + (jo + c) * k;
    for (int kk = 0; kk < k; ++kk) bp[kk * nr + c] = brow[kk];
  }
}

/// Scalar-chain tail for AB^T columns [j0, n): the 1..NR-1 columns that
/// do not fill a packed panel. Same dot-chain order as the reference.
template <int MR>
inline void MicroColTailABt(const float* a, const float* b, float* out,
                            int i0, int j0, int k, int n) {
  for (int j = j0; j < n; ++j) {
    float acc[MR] = {};
    for (int kk = 0; kk < k; ++kk) {
      const float bv = b[j * k + kk];
      for (int r = 0; r < MR; ++r) acc[r] += a[(i0 + r) * k + kk] * bv;
    }
    for (int r = 0; r < MR; ++r) out[(i0 + r) * n + j] += acc[r];
  }
}

/// out[i0..i0+MR) += (a^T)[i0..i0+MR) * b for row-major a [k,m], b [k,n].
/// Same register tile as MicroPanelAB; only the a indexing differs
/// (column-strided gather of MR scalars per k step). Replaces the
/// reference kernel's k full sweeps over the out matrix with a single
/// pass.
template <typename Vec, int MR, int V>
inline void MicroPanelAtB(const float* a, const float* b, float* out, int i0,
                          int k, int m, int n) {
  constexpr int W = static_cast<int>(sizeof(Vec) / sizeof(float));
  constexpr int NR = W * V;
  int j = 0;
  for (; j + NR <= n; j += NR) {
    Vec acc[MR][V];
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < V; ++v) {
        acc[r][v] = LoadVec<Vec>(out + (i0 + r) * n + j + v * W);
      }
    }
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j;
      const float* acol = a + kk * m + i0;
      Vec bv[V];
      for (int v = 0; v < V; ++v) bv[v] = LoadVec<Vec>(brow + v * W);
      for (int r = 0; r < MR; ++r) {
        const float av = acol[r];
        for (int v = 0; v < V; ++v) acc[r][v] += bv[v] * av;
      }
    }
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < V; ++v) {
        StoreVec<Vec>(out + (i0 + r) * n + j + v * W, acc[r][v]);
      }
    }
  }
  for (; j < n; ++j) {
    float acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = out[(i0 + r) * n + j];
    for (int kk = 0; kk < k; ++kk) {
      const float bv = b[kk * n + j];
      for (int r = 0; r < MR; ++r) acc[r] += a[kk * m + i0 + r] * bv;
    }
    for (int r = 0; r < MR; ++r) out[(i0 + r) * n + j] = acc[r];
  }
}

/// Drives MicroPanel over output rows [ib, ie): full MR-row panels, then
/// a 1..MR-1 row tail. `Panel` is one of the micro-tiles above bound to
/// its extra geometry arguments.
template <int MR, typename PanelFn, typename TailFn>
inline void ForEachRowPanel(int ib, int ie, PanelFn panel, TailFn tail) {
  int i = ib;
  for (; i + MR <= ie; i += MR) panel(i);
  for (; i < ie; ++i) tail(i);
}

}  // namespace gemm
}  // namespace nlidb

#endif  // NLIDB_TENSOR_GEMM_TILES_H_
