#ifndef NLIDB_TENSOR_TENSOR_H_
#define NLIDB_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"

namespace nlidb {

/// A dense row-major float tensor.
///
/// This is the numeric substrate for the from-scratch neural network stack
/// (the paper used PyTorch-class frameworks; none is available offline, so
/// the library ships its own — see DESIGN.md "Substitutions").
/// Rank 1 and rank 2 cover every model in the paper; rank-3 is supported
/// for batched intermediates.
class Tensor {
 public:
  /// An empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Tensor with explicit contents; `data.size()` must equal the product
  /// of `shape`.
  Tensor(std::vector<int> shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Factory helpers.
  static Tensor Zeros(std::vector<int> shape);
  static Tensor Ones(std::vector<int> shape);
  static Tensor Full(std::vector<int> shape, float value);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Gaussian(std::vector<int> shape, float stddev, Rng& rng);
  /// I.i.d. U(lo, hi) entries.
  static Tensor Uniform(std::vector<int> shape, float lo, float hi, Rng& rng);
  /// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
  static Tensor Xavier(int fan_in, int fan_out, Rng& rng);
  /// Rank-1 tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  const std::vector<int>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension `d` of the shape. Requires d < rank().
  int dim(int d) const { return shape_[d]; }
  /// Rank-2 conveniences. Require rank() == 2.
  int rows() const { return shape_[0]; }
  int cols() const { return shape_[1]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  /// Element access. Bounds are checked with NLIDB_CHECK in at(); the
  /// operator() variants are unchecked hot-path accessors.
  float& operator()(int i) { return data_[i]; }
  float operator()(int i) const { return data_[i]; }
  float& operator()(int i, int j) { return data_[i * shape_[1] + j]; }
  float operator()(int i, int j) const { return data_[i * shape_[1] + j]; }
  float& at(int i, int j);
  float at(int i, int j) const;

  /// Whole-tensor in-place operations.
  void Fill(float value);
  void Scale(float factor);
  /// this += other. Shapes must match exactly.
  void Add(const Tensor& other);
  /// this += factor * other. Shapes must match exactly.
  void Axpy(float factor, const Tensor& other);

  /// Reductions.
  float Sum() const;
  float Max() const;
  float AbsMax() const;
  /// L2 norm of all entries.
  float Norm2() const;
  /// Lp norm (p >= 1) of all entries.
  float NormP(float p) const;

  /// Returns a copy of row `i` (rank-2 only) as a rank-1 tensor.
  Tensor Row(int i) const;
  /// Overwrites row `i` with `row` (rank-2 only; row.size() == cols()).
  void SetRow(int i, const Tensor& row);

  /// Reshape without copying data; product of new shape must equal size().
  Tensor Reshaped(std::vector<int> new_shape) const;
  /// Transpose of a rank-2 tensor.
  Tensor Transposed() const;

  /// True when shapes are equal and all entries differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  /// Compact debug string: "Tensor[2x3]{1, 2, ...}".
  std::string ToString(int max_entries = 8) const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// out = a * b for rank-2 tensors ([m,k] x [k,n] -> [m,n]).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// out += a * b. `out` must already be [m,n].
///
/// All three accumulate kernels are register-blocked and tiled, with a
/// row-partitioned parallel path (ThreadPool::Global) above
/// `kGemmParallelFlops`. Every output element receives its k partial
/// products in increasing-k order no matter which path runs, so results
/// are bitwise identical to the scalar reference kernel — parallelism and
/// tiling never change model outputs (DESIGN.md "Performance
/// architecture").
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);
/// Raw-pointer form of MatMulAccumulate: out[m,n] += a[m,k] * b[k,n].
/// Same kernel dispatch (ISA tier, counters) and the same row-partitioned
/// parallel path above kGemmParallelFlops, for callers that stage
/// operands in Workspace arena buffers instead of Tensors (the decoder
/// inference fast path). The bitwise-determinism contract above applies
/// unchanged.
void GemmAccumulateRaw(const float* a, const float* b, float* out, int m,
                       int k, int n);

/// out += a^T * b ([k,m]^T x [k,n] -> [m,n]). When `a` is mostly zeros
/// (sparse activation gradients: zero-padded feature slots, ReLU outputs,
/// embedding-style one-hots), a skip-on-zero path is used instead of the
/// dense tiles; both paths produce bitwise-identical results.
void MatMulTransposeAAccumulate(const Tensor& a, const Tensor& b, Tensor& out);
/// out += a * b^T ([m,k] x [n,k]^T -> [m,n]).
void MatMulTransposeBAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// Scalar reference kernels (the seed's naive loops, kept in their own
/// translation unit with baseline compile flags). Used by tests to verify
/// the tiled kernels bitwise and by bench_micro_substrate to report
/// speedup against the seed implementation.
void MatMulAccumulateReference(const Tensor& a, const Tensor& b, Tensor& out);
void MatMulTransposeAAccumulateReference(const Tensor& a, const Tensor& b,
                                         Tensor& out);
void MatMulTransposeBAccumulateReference(const Tensor& a, const Tensor& b,
                                         Tensor& out);

/// Work threshold (2*m*n*k flops) above which the accumulate kernels
/// partition rows across the global thread pool.
inline constexpr long long kGemmParallelFlops = 1LL << 23;

size_t NumElements(const std::vector<int>& shape);

}  // namespace nlidb

#endif  // NLIDB_TENSOR_TENSOR_H_
