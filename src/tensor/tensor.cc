#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernels.h"

namespace nlidb {

size_t NumElements(const std::vector<int>& shape) {
  size_t n = 1;
  for (int d : shape) {
    NLIDB_CHECK(d >= 0) << "negative dimension " << d;
    n *= static_cast<size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  NLIDB_CHECK(data_.size() == NumElements(shape_))
      << "shape/data mismatch: " << data_.size() << " elements vs shape "
      << NumElements(shape_);
}

Tensor Tensor::Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<int> shape) {
  Tensor t(std::move(shape));
  t.Fill(1.0f);
  return t;
}

Tensor Tensor::Full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Gaussian(std::vector<int> shape, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = stddev * rng.NextGaussian();
  return t;
}

Tensor Tensor::Uniform(std::vector<int> shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = rng.NextFloat(lo, hi);
  return t;
}

Tensor Tensor::Xavier(int fan_in, int fan_out, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform({fan_in, fan_out}, -bound, bound, rng);
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return Tensor({static_cast<int>(values.size())}, values);
}

float& Tensor::at(int i, int j) {
  NLIDB_CHECK(rank() == 2 && i >= 0 && i < rows() && j >= 0 && j < cols())
      << "at(" << i << "," << j << ") out of bounds";
  return (*this)(i, j);
}

float Tensor::at(int i, int j) const {
  NLIDB_CHECK(rank() == 2 && i >= 0 && i < rows() && j >= 0 && j < cols())
      << "at(" << i << "," << j << ") out of bounds";
  return (*this)(i, j);
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::Scale(float factor) {
  for (float& x : data_) x *= factor;
}

void Tensor::Add(const Tensor& other) {
  NLIDB_CHECK(shape_ == other.shape_) << "Add shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float factor, const Tensor& other) {
  NLIDB_CHECK(shape_ == other.shape_) << "Axpy shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

float Tensor::Sum() const {
  float s = 0.0f;
  for (float x : data_) s += x;
  return s;
}

float Tensor::Max() const {
  NLIDB_CHECK(!data_.empty()) << "Max of empty tensor";
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::Norm2() const {
  float s = 0.0f;
  for (float x : data_) s += x * x;
  return std::sqrt(s);
}

float Tensor::NormP(float p) const {
  NLIDB_CHECK(p >= 1.0f) << "NormP requires p >= 1";
  float s = 0.0f;
  for (float x : data_) s += std::pow(std::fabs(x), p);
  return std::pow(s, 1.0f / p);
}

Tensor Tensor::Row(int i) const {
  NLIDB_CHECK(rank() == 2 && i >= 0 && i < rows()) << "Row out of bounds";
  Tensor out({cols()});
  std::copy(data_.begin() + static_cast<size_t>(i) * cols(),
            data_.begin() + static_cast<size_t>(i + 1) * cols(),
            out.data_.begin());
  return out;
}

void Tensor::SetRow(int i, const Tensor& row) {
  NLIDB_CHECK(rank() == 2 && i >= 0 && i < rows()) << "SetRow out of bounds";
  NLIDB_CHECK(static_cast<int>(row.size()) == cols()) << "SetRow width mismatch";
  std::copy(row.data_.begin(), row.data_.end(),
            data_.begin() + static_cast<size_t>(i) * cols());
}

Tensor Tensor::Reshaped(std::vector<int> new_shape) const {
  NLIDB_CHECK(NumElements(new_shape) == data_.size()) << "Reshape size mismatch";
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

Tensor Tensor::Transposed() const {
  NLIDB_CHECK(rank() == 2) << "Transposed requires rank 2";
  Tensor out({cols(), rows()});
  for (int i = 0; i < rows(); ++i) {
    for (int j = 0; j < cols(); ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ToString(int max_entries) const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << "x";
    os << shape_[i];
  }
  os << "]{";
  int n = std::min<int>(max_entries, static_cast<int>(data_.size()));
  for (int i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (static_cast<size_t>(n) < data_.size()) os << ", ...";
  os << "}";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  NLIDB_CHECK(a.rank() == 2 && b.rank() == 2 && a.cols() == b.rows())
      << "MatMul shape mismatch";
  Tensor out({a.rows(), b.cols()});
  MatMulAccumulate(a, b, out);
  return out;
}

namespace {

// Runs `rows(ib, ie)` over [0, m), partitioned across the global thread
// pool when the kernel has enough arithmetic (`flops` = 2*m*k*n) to
// amortize the fork/join. Each output row belongs to exactly one
// contiguous chunk, so the partition never changes any element's
// accumulation order — parallel and serial results are bitwise identical.
template <typename RowsFn>
void RunRowPartitioned(long long flops, int m, const RowsFn& rows) {
  ThreadPool& pool = ThreadPool::Global();
  if (flops >= kGemmParallelFlops && pool.parallelism() > 1) {
    pool.ParallelFor(0, m, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  NLIDB_CHECK(out.rows() == m && out.cols() == n) << "MatMulAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const gemm::RowKernels& kr = gemm::Kernels();
  RunRowPartitioned(2LL * m * k * n, m, [&](int ib, int ie) {
    kr.rows_ab(pa, pb, po, ib, ie, k, n);
  });
}

void GemmAccumulateRaw(const float* a, const float* b, float* out, int m,
                       int k, int n) {
  const gemm::RowKernels& kr = gemm::Kernels();
  RunRowPartitioned(2LL * m * k * n, m, [&](int ib, int ie) {
    kr.rows_ab(a, b, out, ib, ie, k, n);
  });
}

void MatMulTransposeAAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const int k = a.rows();
  const int m = a.cols();
  const int n = b.cols();
  NLIDB_CHECK(b.rows() == k && out.rows() == m && out.cols() == n)
      << "MatMulTransposeAAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // This kernel's `a` is usually an activation matrix feeding a weight
  // gradient, and those are often mostly zeros (zero-padded feature
  // slots, ReLU outputs, one-hot selections). A skip-on-zero sweep beats
  // the dense tiles there, so probe the density first; the probe is one
  // pass over `a` against n passes of saved work per skipped value.
  const size_t total = a.size();
  size_t zeros = 0;
  for (size_t idx = 0; idx < total; ++idx) zeros += (pa[idx] == 0.0f);
  const bool sparse = zeros * 2 >= total;
  const gemm::RowKernels& kr = gemm::Kernels();
  RunRowPartitioned(2LL * m * k * n, m, [&](int ib, int ie) {
    if (sparse) {
      // kk-outer with increasing-kk accumulation per element: the same
      // order as the dense tiles, so both paths match bitwise.
      for (int kk = 0; kk < k; ++kk) {
        const float* arow = pa + kk * m;
        const float* brow = pb + kk * n;
        for (int i = ib; i < ie; ++i) {
          const float v = arow[i];
          if (v == 0.0f) continue;
          float* orow = po + i * n;
          for (int j = 0; j < n; ++j) orow[j] += v * brow[j];
        }
      }
    } else {
      kr.rows_atb(pa, pb, po, ib, ie, k, m, n);
    }
  });
}

void MatMulTransposeBAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  NLIDB_CHECK(b.cols() == k && out.rows() == m && out.cols() == n)
      << "MatMulTransposeBAccumulate shape";
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const gemm::RowKernels& kr = gemm::Kernels();
  RunRowPartitioned(2LL * m * k * n, m, [&](int ib, int ie) {
    kr.rows_abt(pa, pb, po, ib, ie, k, n);
  });
}

namespace gemm {

namespace {

constexpr RowKernels kBaseKernels{base::RowsAB, base::RowsABt, base::RowsAtB};
constexpr RowKernels kAvx2Kernels{avx2::RowsAB, avx2::RowsABt, avx2::RowsAtB};

Tier TierFromEnv() {
  const char* env = std::getenv("NLIDB_GEMM_TIER");
  if (env == nullptr) return Tier::kAuto;
  const std::string v(env);
  if (v == "base") return Tier::kBase;
  if (v == "avx2") return Tier::kAvx2;
  return Tier::kAuto;
}

// The requested tier: env default, overridable by SetTier. Atomic so a
// test harness flipping tiers between requests never races the dispatch
// reads in concurrent kernels.
std::atomic<Tier>& RequestedTier() {
  static std::atomic<Tier> tier{TierFromEnv()};
  return tier;
}

}  // namespace

void SetTier(Tier tier) {
  RequestedTier().store(tier, std::memory_order_relaxed);
}

Tier ActiveTier() {
  static const bool has_avx2 = avx2::Available();
  const Tier requested = RequestedTier().load(std::memory_order_relaxed);
  if (requested == Tier::kBase) return Tier::kBase;
  return has_avx2 ? Tier::kAvx2 : Tier::kBase;
}

const RowKernels& Kernels() {
  // Dispatch-tier visibility: which ISA path the process actually runs
  // (a silent fallback to base on an AVX2 box is a perf bug).
  static metrics::Counter& dispatch_avx2 =
      metrics::MetricsRegistry::Global().GetCounter("gemm.dispatch.avx2");
  static metrics::Counter& dispatch_base =
      metrics::MetricsRegistry::Global().GetCounter("gemm.dispatch.base");
  if (ActiveTier() == Tier::kAvx2) {
    dispatch_avx2.Increment();
    return kAvx2Kernels;
  }
  dispatch_base.Increment();
  return kBaseKernels;
}

}  // namespace gemm

}  // namespace nlidb
